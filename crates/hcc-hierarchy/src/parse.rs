//! Parsing hierarchies from flat `region,parent` CSV.
//!
//! The paper's `Hierarchy(region_id, level0, …, levelL)` table is
//! public; agencies ship it as a flat file. The format accepted here
//! is one row per region, `region_name,parent_name`, with exactly one
//! root row whose parent field is empty. Rows may appear in any order;
//! a header line `region,parent` and `#` comments are skipped.

use std::collections::HashMap;

use crate::{Hierarchy, HierarchyBuilder, NodeId};

/// Errors raised while parsing a hierarchy CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A row did not contain a comma.
    BadRow {
        /// 1-based line number.
        line: usize,
    },
    /// Two root rows (empty parent) were found.
    MultipleRoots {
        /// Name of the second root encountered.
        name: String,
    },
    /// No root row was found.
    NoRoot,
    /// The same region name was declared twice.
    DuplicateRegion {
        /// The duplicated name.
        name: String,
    },
    /// A region's parent never appears as a region itself, or the
    /// parent links form a cycle disconnected from the root.
    Unreachable {
        /// Names of the regions that could not be attached.
        names: Vec<String>,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadRow { line } => write!(f, "line {line}: expected region,parent"),
            ParseError::MultipleRoots { name } => {
                write!(f, "second root row found: {name:?} (parent field empty)")
            }
            ParseError::NoRoot => write!(f, "no root row (empty parent field) found"),
            ParseError::DuplicateRegion { name } => {
                write!(f, "region {name:?} declared twice")
            }
            ParseError::Unreachable { names } => {
                write!(f, "regions not reachable from the root: {names:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a `region,parent` CSV into a [`Hierarchy`] plus a map from
/// region name to node id.
pub fn hierarchy_from_csv(text: &str) -> Result<(Hierarchy, HashMap<String, NodeId>), ParseError> {
    // First pass: collect (name, parent) pairs.
    let mut rows: Vec<(String, String)> = Vec::new();
    let mut root: Option<String> = None;
    let mut seen: HashMap<String, ()> = HashMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let row = raw.trim();
        if row.is_empty()
            || row.starts_with('#')
            || (i == 0 && row.eq_ignore_ascii_case("region,parent"))
        {
            continue;
        }
        let (name, parent) = row.split_once(',').ok_or(ParseError::BadRow { line })?;
        let (name, parent) = (name.trim().to_string(), parent.trim().to_string());
        if seen.insert(name.clone(), ()).is_some() {
            return Err(ParseError::DuplicateRegion { name });
        }
        if parent.is_empty() {
            if let Some(_existing) = &root {
                return Err(ParseError::MultipleRoots { name });
            }
            root = Some(name);
        } else {
            rows.push((name, parent));
        }
    }
    let root = root.ok_or(ParseError::NoRoot)?;

    // Attach children breadth-first so parents always exist.
    let mut builder = HierarchyBuilder::new(root.clone());
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    ids.insert(root, Hierarchy::ROOT);
    let mut pending = rows;
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|(name, parent)| {
            if let Some(&pid) = ids.get(parent) {
                let id = builder.add_child(pid, name.clone());
                ids.insert(name.clone(), id);
                false
            } else {
                true
            }
        });
        if pending.len() == before {
            return Err(ParseError::Unreachable {
                names: pending.into_iter().map(|(n, _)| n).collect(),
            });
        }
    }
    Ok((builder.build(), ids))
}

/// Serialises a hierarchy back to the `region,parent` CSV format
/// accepted by [`hierarchy_from_csv`].
pub fn hierarchy_to_csv(h: &Hierarchy) -> String {
    let mut out = String::from("region,parent\n");
    for node in h.iter() {
        let parent = h.parent(node).map(|p| h.name(p)).unwrap_or("");
        out.push_str(&format!("{},{}\n", h.name(node), parent));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
region,parent
# a comment
national,
virginia,national
maryland,national
fairfax,virginia
arlington,virginia";

    #[test]
    fn parses_out_of_order_rows() {
        // Children before parents must still attach.
        let text = "fairfax,virginia\nnational,\nvirginia,national";
        let (h, ids) = hierarchy_from_csv(text).unwrap();
        assert_eq!(h.num_nodes(), 3);
        assert_eq!(h.level_of(ids["fairfax"]), 2);
    }

    #[test]
    fn sample_round_trip() {
        let (h, ids) = hierarchy_from_csv(SAMPLE).unwrap();
        assert_eq!(h.num_nodes(), 5);
        assert_eq!(h.num_levels(), 3);
        assert_eq!(h.parent(ids["fairfax"]), Some(ids["virginia"]));
        assert_eq!(h.name(Hierarchy::ROOT), "national");

        let csv = hierarchy_to_csv(&h);
        let (h2, ids2) = hierarchy_from_csv(&csv).unwrap();
        assert_eq!(h2.num_nodes(), 5);
        assert_eq!(h2.level_of(ids2["arlington"]), 2);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            hierarchy_from_csv("justafield").unwrap_err(),
            ParseError::BadRow { line: 1 }
        );
        assert_eq!(hierarchy_from_csv("a,b").unwrap_err(), ParseError::NoRoot);
        assert_eq!(
            hierarchy_from_csv("a,\nb,").unwrap_err(),
            ParseError::MultipleRoots { name: "b".into() }
        );
        assert_eq!(
            hierarchy_from_csv("a,\nc,a\nc,a").unwrap_err(),
            ParseError::DuplicateRegion { name: "c".into() }
        );
        assert_eq!(
            hierarchy_from_csv("a,\nb,ghost").unwrap_err(),
            ParseError::Unreachable {
                names: vec!["b".into()]
            }
        );
    }

    #[test]
    fn error_messages_render() {
        for e in [
            ParseError::BadRow { line: 1 },
            ParseError::MultipleRoots { name: "x".into() },
            ParseError::NoRoot,
            ParseError::DuplicateRegion { name: "x".into() },
            ParseError::Unreachable {
                names: vec!["x".into()],
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
