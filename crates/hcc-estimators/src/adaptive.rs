//! Data-adaptive method selection between the `Hc` and `Hg` methods.
//!
//! The paper observes that neither method dominates: `Hc` wins on
//! *dense* supports (White race data — "many groups from size 0 to
//! size 3000") while `Hg` wins on *gappy* ones (the housing data —
//! "many small groups followed by large gaps between group sizes"),
//! and defers fine-grained selection to tools like Pythia or
//! Chaudhuri et al. (footnote 4, §6.2). This module provides a
//! self-contained private selector in that spirit:
//!
//! 1. spend a small slice of the node's budget measuring the support
//!    *occupancy*: a noisy count of distinct group sizes (global
//!    sensitivity 2 — one person moving between sizes can open one
//!    cell and close another) and a noisy maximum size (sensitivity 1,
//!    footnote 6's procedure);
//! 2. if the occupied fraction `distinct / max` is below a threshold,
//!    the support is gappy → use `Hg`; otherwise use `Hc`;
//! 3. spend the remaining budget on the chosen method.
//!
//! Sequential composition across the three queries keeps the whole
//! estimator ε-differentially private.

use hcc_core::CountOfCounts;
use hcc_isotonic::CumulativeLoss;
use hcc_noise::GeometricMechanism;
use rand::Rng;

use crate::hc::CumulativeEstimator;
use crate::hg::UnattributedEstimator;
use crate::k_bound::estimate_size_bound;
use crate::{Estimator, EstimatorWorkspace, NodeEstimate};

/// Chooses between [`CumulativeEstimator`] and
/// [`UnattributedEstimator`] per node using a private sparsity probe.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveEstimator {
    /// Public size bound `K` handed to the `Hc` method.
    pub bound: u64,
    /// Fraction of the node budget spent on the selection probe
    /// (split evenly between the distinct-size and max-size queries).
    pub selector_fraction: f64,
    /// Occupancy threshold: supports sparser than this use `Hg`.
    pub occupancy_threshold: f64,
}

impl AdaptiveEstimator {
    /// Sensible defaults: 5 % of budget on selection, 5 % occupancy
    /// threshold.
    pub fn new(bound: u64) -> Self {
        Self {
            bound,
            selector_fraction: 0.05,
            occupancy_threshold: 0.05,
        }
    }

    /// Overrides the probe budget fraction.
    pub fn with_selector_fraction(mut self, f: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&f) && f > 0.0,
            "fraction must be in (0, 1)"
        );
        self.selector_fraction = f;
        self
    }

    /// Overrides the occupancy threshold.
    pub fn with_occupancy_threshold(mut self, t: f64) -> Self {
        assert!(t > 0.0, "threshold must be positive");
        self.occupancy_threshold = t;
        self
    }

    /// The private selection probe: returns `true` when `Hg` should
    /// be used (gappy support), consuming `eps_probe` of budget.
    fn probe_prefers_hg<R: Rng + ?Sized>(
        &self,
        hist: &CountOfCounts,
        eps_probe: f64,
        rng: &mut R,
    ) -> bool {
        let half = eps_probe / 2.0;
        // Distinct-size count, sensitivity 2.
        let mech = GeometricMechanism::new(half, 2.0);
        let distinct = mech.privatize(hist.distinct_sizes() as u64, rng).max(1) as f64;
        // Maximum size, sensitivity 1 (with the footnote-6 cushion the
        // bound overshoots; that only makes the occupancy conservative).
        let max = estimate_size_bound(hist, half, rng).max(1) as f64;
        distinct / max < self.occupancy_threshold
    }
}

impl Estimator for AdaptiveEstimator {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn estimate_in<R: Rng + ?Sized>(
        &self,
        hist: &CountOfCounts,
        g: u64,
        epsilon: f64,
        rng: &mut R,
        ws: &mut EstimatorWorkspace,
    ) -> NodeEstimate {
        if g == 0 {
            return NodeEstimate::new(CountOfCounts::new(), Vec::new());
        }
        let eps_probe = epsilon * self.selector_fraction;
        let eps_rest = epsilon - eps_probe;
        if self.probe_prefers_hg(hist, eps_probe, rng) {
            UnattributedEstimator::new().estimate_in(hist, g, eps_rest, rng, ws)
        } else {
            CumulativeEstimator::with_loss(self.bound, CumulativeLoss::L1)
                .estimate_in(hist, g, eps_rest, rng, ws)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Dense support: sizes 1..=200 all occupied.
    fn dense() -> CountOfCounts {
        CountOfCounts::from_group_sizes((1..=200u64).flat_map(|s| [s, s]))
    }

    /// Gappy support: a few tiny sizes plus isolated huge outliers.
    fn gappy() -> CountOfCounts {
        let mut sizes = vec![1u64; 300];
        sizes.extend([5_000, 20_000, 90_000]);
        CountOfCounts::from_group_sizes(sizes)
    }

    #[test]
    fn probe_separates_dense_from_gappy() {
        let est = AdaptiveEstimator::new(100_000);
        let mut rng = StdRng::seed_from_u64(41);
        let mut dense_hg = 0;
        let mut gappy_hg = 0;
        for _ in 0..20 {
            if est.probe_prefers_hg(&dense(), 0.5, &mut rng) {
                dense_hg += 1;
            }
            if est.probe_prefers_hg(&gappy(), 0.5, &mut rng) {
                gappy_hg += 1;
            }
        }
        assert!(dense_hg <= 2, "dense data picked Hg {dense_hg}/20 times");
        assert!(
            gappy_hg >= 18,
            "gappy data picked Hg only {gappy_hg}/20 times"
        );
    }

    #[test]
    fn estimate_satisfies_contract_on_both_profiles() {
        let est = AdaptiveEstimator::new(100_000);
        let mut rng = StdRng::seed_from_u64(42);
        for h in [dense(), gappy()] {
            let g = h.num_groups();
            let out = est.estimate(&h, g, 1.0, &mut rng);
            assert_eq!(out.hist().num_groups(), g);
        }
    }

    #[test]
    fn zero_groups() {
        let est = AdaptiveEstimator::new(16);
        let mut rng = StdRng::seed_from_u64(43);
        let out = est.estimate(&CountOfCounts::new(), 0, 1.0, &mut rng);
        assert!(out.hist().is_empty());
    }

    #[test]
    fn builder_validation() {
        let est = AdaptiveEstimator::new(16)
            .with_selector_fraction(0.1)
            .with_occupancy_threshold(0.2);
        assert_eq!(est.selector_fraction, 0.1);
        assert_eq!(est.occupancy_threshold, 0.2);
        assert_eq!(est.name(), "adaptive");
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn invalid_fraction_panics() {
        let _ = AdaptiveEstimator::new(16).with_selector_fraction(1.5);
    }

    #[test]
    fn adaptive_tracks_the_better_method_on_average() {
        // On gappy data at moderate ε, adaptive should be close to
        // pure Hg (within noise), far from the Hc failure mode.
        use hcc_core::emd;
        let h = gappy();
        let g = h.num_groups();
        let mut rng = StdRng::seed_from_u64(44);
        let runs = 5;
        fn avg<E: Estimator>(
            est: &E,
            h: &CountOfCounts,
            g: u64,
            runs: usize,
            rng: &mut StdRng,
        ) -> f64 {
            (0..runs)
                .map(|_| emd(est.estimate(h, g, 0.2, rng).hist(), h) as f64)
                .sum::<f64>()
                / runs as f64
        }
        let adaptive = avg(&AdaptiveEstimator::new(100_000), &h, g, runs, &mut rng);
        let hg = avg(&UnattributedEstimator::new(), &h, g, runs, &mut rng);
        assert!(
            adaptive < 10.0 * (hg + 1.0),
            "adaptive {adaptive} strayed far from Hg {hg}"
        );
    }
}
