//! The unattributed-histogram method (`Hg`, Section 4.2).

use hcc_core::CountOfCounts;
use hcc_isotonic::isotonic_l2;
use hcc_noise::GeometricMechanism;
use rand::Rng;

use crate::estimate::VarianceRun;
use crate::{Estimator, EstimatorWorkspace, NodeEstimate};

/// Privatizes via the unattributed representation: add
/// double-geometric noise with scale `1/ε` to every entry of the
/// length-`G` non-decreasing vector `Hg` (sensitivity 1, Hay et al.),
/// restore monotonicity with L2 isotonic regression, round to the
/// nearest integer, and convert back to a count-of-counts histogram.
///
/// The paper uses the L2 (PAV) variant because `Hg` "can have length
/// in the hundreds of millions" where PAV's linear time matters; we
/// follow that choice.
///
/// Per-group variances (Section 5.1.1): a group in an isotonic
/// partition of size `|S|` gets variance `2 / (|S| ε²)` — the Laplace
/// approximation of the noise variance divided by the number of noisy
/// cells averaged by PAV.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnattributedEstimator;

impl UnattributedEstimator {
    /// Sensitivity of the unattributed histogram query.
    pub const SENSITIVITY: f64 = 1.0;

    /// Creates the estimator.
    pub fn new() -> Self {
        Self
    }
}

impl Estimator for UnattributedEstimator {
    fn name(&self) -> &'static str {
        "Hg"
    }

    fn estimate_in<R: Rng + ?Sized>(
        &self,
        hist: &CountOfCounts,
        g: u64,
        epsilon: f64,
        rng: &mut R,
        ws: &mut EstimatorWorkspace,
    ) -> NodeEstimate {
        debug_assert_eq!(hist.num_groups(), g, "public G must match the data");
        if g == 0 {
            return NodeEstimate::new(CountOfCounts::new(), Vec::new());
        }
        let mech = GeometricMechanism::new(epsilon, Self::SENSITIVITY);
        // Expand to the dense Hg in the reusable f64 buffer,
        // privatizing every coordinate. Iterating the non-zero cells
        // directly draws noise in exactly the run order the seed
        // path's materialised `to_unattributed()` walk used.
        let noisy = &mut ws.values;
        noisy.clear();
        noisy.reserve(usize::try_from(g).expect("G exceeds memory"));
        for (size, &count) in hist.as_slice().iter().enumerate() {
            for _ in 0..count {
                noisy.push(mech.privatize(size as u64, rng) as f64);
            }
        }
        let fit = isotonic_l2(noisy).clamped(0.0, f64::INFINITY);
        // Round block-wise; pool variance where rounding merges
        // adjacent blocks to the same size.
        let per_cell_var = 2.0 / (epsilon * epsilon);
        let runs: Vec<VarianceRun> = fit
            .blocks()
            .iter()
            .map(|b| VarianceRun {
                size: b.value.round().max(0.0) as u64,
                count: b.len as u64,
                variance: per_cell_var / b.len as f64,
            })
            .collect();
        NodeEstimate::from_variance_runs(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::emd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_group_count() {
        let h = CountOfCounts::from_group_sizes([1, 2, 2, 9, 100]);
        let mut rng = StdRng::seed_from_u64(5);
        let est = UnattributedEstimator::new().estimate(&h, 5, 0.5, &mut rng);
        assert_eq!(est.hist().num_groups(), 5);
    }

    #[test]
    fn empty_node() {
        let h = CountOfCounts::new();
        let mut rng = StdRng::seed_from_u64(6);
        let est = UnattributedEstimator::new().estimate(&h, 0, 1.0, &mut rng);
        assert!(est.hist().is_empty());
        assert!(est.variances().is_empty());
    }

    #[test]
    fn high_epsilon_recovers_truth() {
        let h = CountOfCounts::from_group_sizes([1, 1, 4, 4, 7]);
        let mut rng = StdRng::seed_from_u64(7);
        let est = UnattributedEstimator::new().estimate(&h, 5, 500.0, &mut rng);
        assert_eq!(est.hist(), &h);
    }

    #[test]
    fn large_groups_estimated_accurately() {
        // §4.2: "this method is very good at estimating large group
        // sizes". One group of 10 000 at ε = 1 should land within a
        // few noise standard deviations.
        let h = CountOfCounts::from_group_sizes([10_000]);
        let mut rng = StdRng::seed_from_u64(8);
        let est = UnattributedEstimator::new().estimate(&h, 1, 1.0, &mut rng);
        let got = est.hist().to_unattributed().runs()[0].size;
        assert!(got.abs_diff(10_000) < 50, "estimated {got}");
    }

    #[test]
    fn variances_shrink_with_partition_size() {
        // Many equal-sized groups pool into a large partition whose
        // per-group variance is divided by the partition length.
        let h = CountOfCounts::from_counts(vec![0, 1000]);
        let mut rng = StdRng::seed_from_u64(9);
        let est = UnattributedEstimator::new().estimate(&h, 1000, 1.0, &mut rng);
        let vr = est.variance_runs();
        // Biggest run should carry a tiny variance (≤ 2/ε² / ~100).
        let dominant = vr.iter().max_by_key(|r| r.count).unwrap();
        assert!(dominant.count > 100);
        assert!(dominant.variance < 2.0 / 100.0);
    }

    #[test]
    fn emd_reasonable_at_moderate_epsilon() {
        let sizes: Vec<u64> = (0..500).map(|i| 1 + (i % 5)).collect();
        let h = CountOfCounts::from_group_sizes(sizes);
        let mut rng = StdRng::seed_from_u64(10);
        let est = UnattributedEstimator::new().estimate(&h, 500, 1.0, &mut rng);
        let e = emd(est.hist(), &h);
        // 500 groups with sizes 1..5; the Hg method's error should be
        // far below total mass (~1500).
        assert!(e < 500, "emd {e} too large");
    }

    #[test]
    fn warm_workspace_is_bit_identical_to_fresh() {
        let mut ws = EstimatorWorkspace::new();
        let hists = [
            CountOfCounts::from_group_sizes([1, 2, 2, 9, 100]),
            CountOfCounts::from_counts(vec![0, 50]),
            CountOfCounts::new(),
        ];
        for (i, h) in hists.iter().enumerate() {
            let g = h.num_groups();
            let mut a = StdRng::seed_from_u64(700 + i as u64);
            let mut b = StdRng::seed_from_u64(700 + i as u64);
            let fresh = UnattributedEstimator::new().estimate(h, g, 0.8, &mut a);
            let warm = UnattributedEstimator::new().estimate_in(h, g, 0.8, &mut b, &mut ws);
            assert_eq!(fresh, warm, "hist {i}");
        }
    }

    #[test]
    fn name() {
        assert_eq!(UnattributedEstimator::new().name(), "Hg");
    }
}
