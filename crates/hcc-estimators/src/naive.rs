//! The naive strategy (Section 4.1): noise directly on `H`.

use hcc_core::CountOfCounts;
use hcc_isotonic::{project_simplex, round_preserving_sum};
use hcc_noise::GeometricMechanism;
use rand::Rng;

use crate::{Estimator, EstimatorWorkspace, NodeEstimate};

/// Adds double-geometric noise with scale `2/ε` to every cell of the
/// (truncated, zero-padded) histogram `H'`, then projects onto
/// `{Ĥ ≥ 0, Σ Ĥ = G}` and rounds with the largest-remainder rule.
///
/// The global sensitivity of `H'` is 2 (Lemma 3): moving one person
/// between group sizes changes two cells by one each.
///
/// The paper rules this method out empirically — its EMD error is
/// several orders of magnitude above the `Hg`/`Hc` methods because
/// noise lands on the (many) empty cells and the cumulative error
/// accumulates as `O(n²)` — but it is reproduced here as the §6.2.1
/// baseline.
#[derive(Clone, Copy, Debug)]
pub struct NaiveEstimator {
    /// Public upper bound `K` on group size.
    pub bound: u64,
}

impl NaiveEstimator {
    /// Sensitivity of the truncated histogram query (Lemma 3).
    pub const SENSITIVITY: f64 = 2.0;

    /// Creates the estimator with public size bound `K`.
    pub fn new(bound: u64) -> Self {
        assert!(bound > 0, "the public size bound must be positive");
        Self { bound }
    }
}

impl Estimator for NaiveEstimator {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn estimate_in<R: Rng + ?Sized>(
        &self,
        hist: &CountOfCounts,
        g: u64,
        epsilon: f64,
        rng: &mut R,
        ws: &mut EstimatorWorkspace,
    ) -> NodeEstimate {
        debug_assert_eq!(hist.num_groups(), g, "public G must match the data");
        // The strawman stays off the hot path (the paper rules it
        // out), but the noise and f64 staging reuse workspace buffers
        // anyway; the simplex projection keeps its own output vector.
        let dense = hist.truncated(self.bound).padded(self.bound);
        let mech = GeometricMechanism::new(epsilon, Self::SENSITIVITY);
        mech.privatize_into(&dense, &mut ws.noisy, rng);
        ws.values.clear();
        ws.values.extend(ws.noisy.iter().map(|&v| v as f64));
        let projected = project_simplex(&ws.values, g as f64);
        let rounded = round_preserving_sum(&projected, g);
        let est = CountOfCounts::from_counts(rounded);
        // The naive method plays no role in the hierarchy, but the
        // trait contract wants variances: use the raw per-cell noise
        // variance spread over each size run (a crude upper bound).
        let var = mech.variance().max(f64::MIN_POSITIVE);
        let runs = est.to_unattributed().runs().len();
        NodeEstimate::new(est, vec![var; runs])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::emd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_satisfies_desiderata() {
        let h = CountOfCounts::from_group_sizes([1, 1, 2, 5, 40]);
        let mut rng = StdRng::seed_from_u64(1);
        let est = NaiveEstimator::new(50).estimate(&h, 5, 1.0, &mut rng);
        assert_eq!(est.hist().num_groups(), 5);
        assert!(est.hist().max_size().unwrap_or(0) <= 50);
    }

    #[test]
    fn oversized_groups_are_truncated_to_bound() {
        let h = CountOfCounts::from_group_sizes([100, 100]);
        let mut rng = StdRng::seed_from_u64(2);
        let est = NaiveEstimator::new(10).estimate(&h, 2, 5.0, &mut rng);
        assert!(est.hist().max_size().unwrap_or(0) <= 10);
        assert_eq!(est.hist().num_groups(), 2);
    }

    #[test]
    fn high_epsilon_recovers_truth_approximately() {
        let h = CountOfCounts::from_group_sizes([1, 1, 1, 2, 3, 3]);
        let mut rng = StdRng::seed_from_u64(3);
        let est = NaiveEstimator::new(8).estimate(&h, 6, 200.0, &mut rng);
        assert_eq!(emd(est.hist(), &h), 0);
    }

    #[test]
    fn error_grows_with_bound_via_empty_cells() {
        // The defining pathology: with a huge K, noise on empty cells
        // dominates. Compare average EMD for K=16 vs K=512.
        let h = CountOfCounts::from_group_sizes(vec![1u64; 20]);
        let mut rng = StdRng::seed_from_u64(4);
        let avg = |bound: u64, rng: &mut StdRng| -> f64 {
            let e = NaiveEstimator::new(bound);
            (0..10)
                .map(|_| emd(e.estimate(&h, 20, 1.0, rng).hist(), &h) as f64)
                .sum::<f64>()
                / 10.0
        };
        let small = avg(16, &mut rng);
        let large = avg(512, &mut rng);
        assert!(
            large > 4.0 * small,
            "expected error blow-up with K: {small} vs {large}"
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bound_rejected() {
        let _ = NaiveEstimator::new(0);
    }

    #[test]
    fn name() {
        assert_eq!(NaiveEstimator::new(1).name(), "naive");
    }
}
