//! Private estimation of the public size bound `K` (footnote 6).
//!
//! When no prior knowledge of the maximum group size is available,
//! the paper spends a sliver of budget (e.g. `ε = 10⁻⁴`) on a noisy
//! maximum: `K = X + Laplace(1/ε) + 5·√2/ε`, where `X` is the true
//! maximum group size. The five-standard-deviation cushion makes
//! `P(K ≥ X) > 0.9995`, and the `Hc` method is insensitive to an
//! overestimated `K`.

use hcc_core::CountOfCounts;
use hcc_noise::LaplaceMechanism;
use rand::Rng;

/// Estimates a public upper bound on group size from the sensitive
/// histogram, spending `epsilon` of budget.
///
/// The max-group-size query has sensitivity 1 (adding or removing one
/// person changes the maximum by at most 1).
pub fn estimate_size_bound<R: Rng + ?Sized>(
    hist: &CountOfCounts,
    epsilon: f64,
    rng: &mut R,
) -> u64 {
    let mech = LaplaceMechanism::new(epsilon, 1.0);
    let x = hist.max_size().unwrap_or(0);
    let cushion = 5.0 * std::f64::consts::SQRT_2 / epsilon;
    let noisy = x as f64 + mech.sample(rng) + cushion;
    // A bound below 1 is useless downstream; clamp.
    noisy.max(1.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bound_exceeds_true_max_with_high_probability() {
        let h = CountOfCounts::from_group_sizes([3, 17, 120]);
        let mut rng = StdRng::seed_from_u64(20);
        let mut above = 0;
        let trials = 1000;
        for _ in 0..trials {
            if estimate_size_bound(&h, 0.01, &mut rng) >= 120 {
                above += 1;
            }
        }
        // Theoretical guarantee is 0.9995; allow slack for sampling.
        assert!(
            above > 990,
            "bound covered the max only {above}/{trials} times"
        );
    }

    #[test]
    fn tiny_epsilon_gives_generous_bound() {
        let h = CountOfCounts::from_group_sizes([10]);
        let mut rng = StdRng::seed_from_u64(21);
        let k = estimate_size_bound(&h, 1e-4, &mut rng);
        // Cushion alone is 5√2·10⁴ ≈ 70 711.
        assert!(k > 10_000);
    }

    #[test]
    fn empty_histogram_still_returns_positive_bound() {
        let h = CountOfCounts::new();
        let mut rng = StdRng::seed_from_u64(22);
        assert!(estimate_size_bound(&h, 1.0, &mut rng) >= 1);
    }
}
