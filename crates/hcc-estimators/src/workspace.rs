//! Reusable per-worker scratch buffers for the estimation hot path.
//!
//! The `Hc` pipeline privatizes a `bound`-length cumulative histogram
//! at every hierarchy node: true cumulative view → noisy copy →
//! isotonic fit → fitted cells. The seed implementation allocated all
//! four dense vectors afresh per node, so a release over a deep
//! hierarchy (and even more so an ε-sweep) spent its time in the
//! allocator rather than in arithmetic. An [`EstimatorWorkspace`]
//! owns those buffers; one workspace per worker thread, reused across
//! every node of a subtree task and — through a [`WorkspacePool`] —
//! across jobs, keeps the hot loop in cache-resident storage with no
//! steady-state allocations.
//!
//! **Determinism.** Buffer reuse never changes results: every buffer
//! is fully overwritten (cleared, then written for exactly the
//! current node's length) before it is read, and the RNG draw order
//! is untouched — the slice-filling noise entry points draw in
//! exactly the per-cell order. The golden bit-identity suite in
//! `hcc-engine` pins this: releases through warm workspaces hash
//! identically to the seed pipeline's.

use std::sync::Mutex;

use hcc_isotonic::PavL1Workspace;

/// Scratch buffers for one estimation worker. Create once per thread
/// (or check out of a [`WorkspacePool`]) and pass to
/// [`Estimator::estimate_in`](crate::Estimator::estimate_in) for
/// every node.
#[derive(Default)]
pub struct EstimatorWorkspace {
    /// True cumulative view of the node (`Hc`), `bound + 1` cells.
    pub(crate) cum: Vec<u64>,
    /// Noisy integer view (`Hc`).
    pub(crate) noisy: Vec<i64>,
    /// Dense f64 scratch: the `Hg` method's noisy unattributed
    /// vector, and the `Hc`-L2 branch's fitted expansion.
    pub(crate) values: Vec<f64>,
    /// Fitted cumulative cells (`Hc`).
    pub(crate) fitted: Vec<u64>,
    /// L1 PAV solver state (block stack + recycled heap storage).
    pub(crate) pav: PavL1Workspace,
}

impl EstimatorWorkspace {
    /// An empty workspace. No buffer allocates until first use, so
    /// constructing one ad hoc (as the convenience
    /// [`Estimator::estimate`](crate::Estimator::estimate) wrapper
    /// does) costs nothing beyond what the seed pipeline paid.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A small shared pool of [`EstimatorWorkspace`]s, used by a serving
/// engine to carry warmed-up buffers **across jobs**: a worker checks
/// one out at the start of a release, reuses it for every node it
/// estimates, and restores it afterwards.
///
/// The pool never grows beyond the peak number of concurrent
/// checkouts (one per engine worker × intra-job thread), because
/// [`WorkspacePool::restore`] only returns what
/// [`WorkspacePool::checkout`] handed out.
#[derive(Default)]
pub struct WorkspacePool {
    idle: Mutex<Vec<EstimatorWorkspace>>,
}

impl WorkspacePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an idle workspace, or creates a fresh one when all are
    /// in use (the buffers warm up on first release).
    pub fn checkout(&self) -> EstimatorWorkspace {
        self.idle
            .lock()
            .expect("workspace pool lock poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a workspace for later reuse, buffers kept warm.
    pub fn restore(&self, ws: EstimatorWorkspace) {
        self.idle
            .lock()
            .expect("workspace pool lock poisoned")
            .push(ws);
    }

    /// Number of idle workspaces currently held.
    pub fn idle_len(&self) -> usize {
        self.idle
            .lock()
            .expect("workspace pool lock poisoned")
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_restore_recycles_buffers() {
        let pool = WorkspacePool::new();
        assert_eq!(pool.idle_len(), 0);
        let mut ws = pool.checkout();
        ws.cum.reserve(1024);
        let warmed = ws.cum.capacity();
        pool.restore(ws);
        assert_eq!(pool.idle_len(), 1);
        let ws = pool.checkout();
        assert!(
            ws.cum.capacity() >= warmed,
            "restored workspace must keep its warm buffers"
        );
        assert_eq!(pool.idle_len(), 0);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_workspaces() {
        let pool = WorkspacePool::new();
        let a = pool.checkout();
        let b = pool.checkout();
        pool.restore(a);
        pool.restore(b);
        assert_eq!(pool.idle_len(), 2);
    }
}
