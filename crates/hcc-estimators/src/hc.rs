//! The cumulative-histogram method (`Hc`, Section 4.3).

use hcc_core::CountOfCounts;
use hcc_isotonic::{anchored_cumulative_into, CumulativeLoss};
use hcc_noise::GeometricMechanism;
use rand::Rng;

use crate::estimate::VarianceRun;
use crate::{Estimator, EstimatorWorkspace, NodeEstimate};

/// Privatizes via the cumulative representation: add double-geometric
/// noise with scale `1/ε` to every cell of `Hc` (sensitivity 1,
/// Lemma 4), then solve the anchored isotonic regression
/// `min ‖Ĥc − H̃c‖_p` subject to `0 ≤ Ĥc` non-decreasing and
/// `Ĥc[K] = G`, and difference back into a histogram.
///
/// EMD is *defined* as the L1 distance between cumulative histograms,
/// so privatizing `Hc` directly optimises the right metric; the paper
/// found the L1 post-processing variant best and we default to it.
///
/// Per-group variances (Section 5.1.2): each cell of `Ĥc` carries
/// (over)estimated variance `2/ε²`, a count `Ĥ[j] = Ĥc[j] − Ĥc[j−1]`
/// has variance `4/ε²`, and dividing by the number of groups sharing
/// that size gives `4 / (ε² · Ĥ[j])` per group.
#[derive(Clone, Copy, Debug)]
pub struct CumulativeEstimator {
    /// Public upper bound `K` on group size.
    pub bound: u64,
    /// Norm minimised by the isotonic post-processing.
    pub loss: CumulativeLoss,
}

impl CumulativeEstimator {
    /// Sensitivity of the cumulative histogram query (Lemma 4).
    pub const SENSITIVITY: f64 = 1.0;

    /// Estimator with the paper's preferred L1 post-processing.
    pub fn new(bound: u64) -> Self {
        Self::with_loss(bound, CumulativeLoss::L1)
    }

    /// Estimator with an explicit choice of post-processing norm.
    pub fn with_loss(bound: u64, loss: CumulativeLoss) -> Self {
        assert!(bound > 0, "the public size bound must be positive");
        Self { bound, loss }
    }
}

impl Estimator for CumulativeEstimator {
    fn name(&self) -> &'static str {
        match self.loss {
            CumulativeLoss::L1 => "Hc",
            CumulativeLoss::L2 => "Hc-L2",
        }
    }

    fn estimate_in<R: Rng + ?Sized>(
        &self,
        hist: &CountOfCounts,
        g: u64,
        epsilon: f64,
        rng: &mut R,
        ws: &mut EstimatorWorkspace,
    ) -> NodeEstimate {
        debug_assert_eq!(hist.num_groups(), g, "public G must match the data");
        // Every dense step runs in workspace buffers: true cumulative
        // view (no truncated-histogram clone), noise (same per-cell
        // draw order as `privatize_vec`), anchored isotonic fit. Only
        // the run-length outputs below allocate, and those are
        // O(distinct sizes), not O(bound).
        hist.to_cumulative_into(self.bound, &mut ws.cum);
        let mech = GeometricMechanism::new(epsilon, Self::SENSITIVITY);
        mech.privatize_into(&ws.cum, &mut ws.noisy, rng);
        anchored_cumulative_into(
            &ws.noisy,
            g,
            self.loss,
            &mut ws.pav,
            &mut ws.values,
            &mut ws.fitted,
        );
        // Differencing the fitted cumulative yields the estimated
        // histogram's non-zero cells in increasing size order —
        // exactly `est.to_unattributed().runs()` of the seed path.
        let mut runs: Vec<VarianceRun> = Vec::new();
        let mut prev = 0u64;
        for (size, &cell) in ws.fitted.iter().enumerate() {
            // Checked: the fit is non-decreasing by construction, but
            // the seed path validated this at runtime
            // (`Cumulative::from_vec`) and a wrap here would flow a
            // garbage count silently into the release.
            let count = cell
                .checked_sub(prev)
                .expect("anchored cumulative fit must be non-decreasing");
            prev = cell;
            if count > 0 {
                runs.push(VarianceRun {
                    size: size as u64,
                    count,
                    variance: 4.0 / (epsilon * epsilon * count as f64),
                });
            }
        }
        NodeEstimate::from_variance_runs(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::emd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_group_count_and_bound() {
        let h = CountOfCounts::from_group_sizes([0, 1, 2, 2, 7, 30]);
        let mut rng = StdRng::seed_from_u64(11);
        let est = CumulativeEstimator::new(64).estimate(&h, 6, 0.5, &mut rng);
        assert_eq!(est.hist().num_groups(), 6);
        assert!(est.hist().max_size().unwrap_or(0) <= 64);
    }

    #[test]
    fn high_epsilon_recovers_truth() {
        let h = CountOfCounts::from_group_sizes([1, 1, 4, 4, 7]);
        let mut rng = StdRng::seed_from_u64(12);
        for loss in [CumulativeLoss::L1, CumulativeLoss::L2] {
            let est = CumulativeEstimator::with_loss(16, loss).estimate(&h, 5, 500.0, &mut rng);
            assert_eq!(est.hist(), &h, "loss {loss:?}");
        }
    }

    #[test]
    fn small_groups_estimated_accurately() {
        // §4.3: "this method is accurate for small group sizes". With
        // 1000 size-1 groups at ε = 1, the estimate should keep almost
        // all of them at size ~1.
        let h = CountOfCounts::from_counts(vec![0, 1000]);
        let mut rng = StdRng::seed_from_u64(13);
        let est = CumulativeEstimator::new(100).estimate(&h, 1000, 1.0, &mut rng);
        let e = emd(est.hist(), &h);
        assert!(e < 200, "emd {e}");
    }

    #[test]
    fn insensitive_to_large_bound() {
        // Footnote 6: the method tolerates K an order of magnitude
        // above the true max. Compare errors with K=100 and K=10_000
        // for data maxing at 50.
        let sizes: Vec<u64> = (0..200).map(|i| 1 + i % 50).collect();
        let h = CountOfCounts::from_group_sizes(sizes);
        let mut rng = StdRng::seed_from_u64(14);
        let avg = |bound: u64, rng: &mut StdRng| -> f64 {
            let est = CumulativeEstimator::new(bound);
            (0..5)
                .map(|_| emd(est.estimate(&h, 200, 1.0, rng).hist(), &h) as f64)
                .sum::<f64>()
                / 5.0
        };
        let tight = avg(100, &mut rng);
        let loose = avg(10_000, &mut rng);
        // Loose bound costs something but not orders of magnitude.
        assert!(
            loose < 30.0 * (tight + 10.0),
            "tight {tight} vs loose {loose}"
        );
    }

    #[test]
    fn variance_runs_follow_formula() {
        let h = CountOfCounts::from_group_sizes([1, 1, 1, 1, 9]);
        let mut rng = StdRng::seed_from_u64(15);
        let eps = 2.0;
        let est = CumulativeEstimator::new(20).estimate(&h, 5, eps, &mut rng);
        for r in est.variance_runs() {
            let expected = 4.0 / (eps * eps * r.count as f64);
            assert!((r.variance - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn warm_workspace_is_bit_identical_to_fresh() {
        // One deliberately dirty workspace across nodes of different
        // bounds: every estimate must match the throwaway-workspace
        // wrapper draw for draw.
        let mut ws = EstimatorWorkspace::new();
        let hists = [
            CountOfCounts::from_group_sizes([0, 1, 2, 2, 7, 30]),
            CountOfCounts::from_group_sizes([5, 5, 5]),
            CountOfCounts::new(),
            CountOfCounts::from_group_sizes((0..100).map(|i| i % 13)),
        ];
        for (i, h) in hists.iter().enumerate() {
            for loss in [CumulativeLoss::L1, CumulativeLoss::L2] {
                for bound in [8u64, 64, 1000] {
                    let est = CumulativeEstimator::with_loss(bound, loss);
                    let g = h.num_groups();
                    let mut a = StdRng::seed_from_u64(900 + i as u64);
                    let mut b = StdRng::seed_from_u64(900 + i as u64);
                    let fresh = est.estimate(h, g, 0.4, &mut a);
                    let warm = est.estimate_in(h, g, 0.4, &mut b, &mut ws);
                    assert_eq!(fresh, warm, "hist {i} {loss:?} bound {bound}");
                }
            }
        }
    }

    #[test]
    fn zero_groups() {
        let h = CountOfCounts::new();
        let mut rng = StdRng::seed_from_u64(16);
        let est = CumulativeEstimator::new(10).estimate(&h, 0, 1.0, &mut rng);
        assert_eq!(est.hist().num_groups(), 0);
    }

    #[test]
    fn names() {
        assert_eq!(CumulativeEstimator::new(5).name(), "Hc");
        assert_eq!(
            CumulativeEstimator::with_loss(5, CumulativeLoss::L2).name(),
            "Hc-L2"
        );
    }
}
