//! The output of a single-node estimator: a histogram plus per-group
//! variance estimates.

use hcc_core::{CountOfCounts, Run, Unattributed};

/// A run of consecutive groups (in the sorted-by-size order of the
/// unattributed histogram `Ĥg`) sharing one size and one variance
/// estimate.
///
/// Section 5.1 assigns every group `i` a variance `τ.Vg[i]` that
/// depends only on the *run* of equal-sized groups containing `i` —
/// `2/(|S_i| ε₁²)` for the `Hg` method, `4/(ε₁² · #groups of that
/// size)` for the `Hc` method — so variances are stored run-length
/// encoded in lockstep with [`Unattributed`] runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VarianceRun {
    /// The common group size of the run.
    pub size: u64,
    /// Number of groups in the run.
    pub count: u64,
    /// Estimated variance of each group's size estimate.
    pub variance: f64,
}

/// A differentially private estimate of one node's histogram together
/// with the variance bookkeeping needed by hierarchical consistency.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeEstimate {
    hist: CountOfCounts,
    variances: Vec<f64>,
}

impl NodeEstimate {
    /// Pairs a histogram with per-run variances. `variances[k]` is the
    /// variance of every group in the `k`-th run of
    /// `hist.to_unattributed()`; the lengths must agree.
    pub fn new(hist: CountOfCounts, variances: Vec<f64>) -> Self {
        let runs = hist.to_unattributed().runs().len();
        assert_eq!(
            runs,
            variances.len(),
            "variance vector must align with the histogram's {runs} size runs"
        );
        assert!(
            variances.iter().all(|v| v.is_finite() && *v > 0.0),
            "variances must be positive and finite"
        );
        Self { hist, variances }
    }

    /// The estimated histogram.
    pub fn hist(&self) -> &CountOfCounts {
        &self.hist
    }

    /// Consumes the estimate, returning the histogram.
    pub fn into_hist(self) -> CountOfCounts {
        self.hist
    }

    /// The per-run variances, aligned with
    /// `self.hist().to_unattributed().runs()`.
    pub fn variances(&self) -> &[f64] {
        &self.variances
    }

    /// The unattributed view zipped with variances: one
    /// [`VarianceRun`] per distinct size.
    pub fn variance_runs(&self) -> Vec<VarianceRun> {
        let ua: Unattributed = self.hist.to_unattributed();
        ua.runs()
            .iter()
            .zip(self.variances.iter())
            .map(|(r, &variance)| VarianceRun {
                size: r.size,
                count: r.count,
                variance,
            })
            .collect()
    }

    /// Builds an estimate from explicit variance runs (used by the
    /// consistency layer when reconstructing merged estimates).
    pub fn from_variance_runs(runs: Vec<VarianceRun>) -> Self {
        let ua = Unattributed::from_unnormalized_runs(
            runs.iter()
                .map(|r| Run {
                    size: r.size,
                    count: r.count,
                })
                .collect(),
        );
        // Re-derive per-run variances after normalisation: if two
        // input runs shared a size they merged, so pool their
        // variances weighted by count.
        let mut by_size: std::collections::BTreeMap<u64, (f64, u64)> =
            std::collections::BTreeMap::new();
        for r in &runs {
            if r.count == 0 {
                continue;
            }
            let e = by_size.entry(r.size).or_insert((0.0, 0));
            e.0 += r.variance * r.count as f64;
            e.1 += r.count;
        }
        let variances: Vec<f64> = ua
            .runs()
            .iter()
            .map(|r| {
                let (wsum, c) = by_size[&r.size];
                wsum / c as f64
            })
            .collect();
        Self {
            hist: ua.to_hist(),
            variances,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_enforced() {
        let h = CountOfCounts::from_group_sizes([1, 1, 3]);
        // Two runs (size 1 ×2, size 3 ×1) need two variances.
        let est = NodeEstimate::new(h.clone(), vec![0.5, 2.0]);
        let runs = est.variance_runs();
        assert_eq!(runs.len(), 2);
        assert_eq!(
            runs[0],
            VarianceRun {
                size: 1,
                count: 2,
                variance: 0.5
            }
        );
        assert_eq!(
            runs[1],
            VarianceRun {
                size: 3,
                count: 1,
                variance: 2.0
            }
        );
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_variances_panic() {
        let h = CountOfCounts::from_group_sizes([1, 1, 3]);
        let _ = NodeEstimate::new(h, vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn nonpositive_variance_panics() {
        let h = CountOfCounts::from_group_sizes([2]);
        let _ = NodeEstimate::new(h, vec![0.0]);
    }

    #[test]
    fn from_variance_runs_normalises_and_pools() {
        let est = NodeEstimate::from_variance_runs(vec![
            VarianceRun {
                size: 5,
                count: 1,
                variance: 2.0,
            },
            VarianceRun {
                size: 2,
                count: 3,
                variance: 1.0,
            },
            VarianceRun {
                size: 5,
                count: 3,
                variance: 6.0,
            },
        ]);
        assert_eq!(
            est.hist(),
            &CountOfCounts::from_group_sizes([2, 2, 2, 5, 5, 5, 5])
        );
        // Size-5 variance pooled: (2·1 + 6·3)/4 = 5.
        assert_eq!(est.variances(), &[1.0, 5.0]);
    }

    #[test]
    fn into_hist_returns_histogram() {
        let h = CountOfCounts::from_group_sizes([7]);
        let est = NodeEstimate::new(h.clone(), vec![1.0]);
        assert_eq!(est.into_hist(), h);
    }
}
