//! Single-node differentially private count-of-counts estimators
//! (Section 4 of the paper).
//!
//! Three strategies produce a private estimate `Ĥ` of one node's
//! count-of-counts histogram:
//!
//! * [`NaiveEstimator`] — geometric noise with scale `2/ε` on every
//!   cell of `H` followed by a nonnegative, sum-to-`G` least-squares
//!   projection. Orders of magnitude worse than the alternatives
//!   (§4.1, confirmed by the §6.2.1 experiment); included as the
//!   paper's strawman.
//! * [`UnattributedEstimator`] (`Hg` method, §4.2) — noise with scale
//!   `1/ε` on the length-`G` unattributed histogram, then L2 isotonic
//!   regression. Accurate for large groups, weak on small ones.
//! * [`CumulativeEstimator`] (`Hc` method, §4.3) — noise with scale
//!   `1/ε` on the cumulative histogram, then anchored isotonic
//!   regression (L1 by default). The paper's recommended default.
//!
//! Every estimator returns a [`NodeEstimate`]: the integral histogram
//! plus the per-group variance estimates of Section 5.1 that the
//! hierarchical consistency step consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod estimate;
pub mod hc;
pub mod hg;
pub mod k_bound;
pub mod naive;
pub mod workspace;

pub use adaptive::AdaptiveEstimator;
pub use estimate::{NodeEstimate, VarianceRun};
pub use hc::CumulativeEstimator;
pub use hg::UnattributedEstimator;
pub use k_bound::estimate_size_bound;
pub use naive::NaiveEstimator;
pub use workspace::{EstimatorWorkspace, WorkspacePool};

use hcc_core::CountOfCounts;
use rand::Rng;

/// A differentially private estimator of a single node's
/// count-of-counts histogram.
///
/// `hist` is the sensitive data; `g` is the *public* number of groups
/// (from the Groups table) which the released histogram must total;
/// `epsilon` is this invocation's privacy budget.
pub trait Estimator {
    /// Short display name used by the experiment harness
    /// (e.g. `"Hc"`, `"Hg"`, `"naive"`).
    fn name(&self) -> &'static str;

    /// Produces the private estimate. The output satisfies
    /// integrality, nonnegativity, and `Σ Ĥ[i] = g`.
    ///
    /// Convenience wrapper over [`Estimator::estimate_in`] with a
    /// throwaway workspace; results are **bit-identical** between the
    /// two entry points — a workspace only recycles buffers, never
    /// changes the RNG draw order or the arithmetic.
    fn estimate<R: Rng + ?Sized>(
        &self,
        hist: &CountOfCounts,
        g: u64,
        epsilon: f64,
        rng: &mut R,
    ) -> NodeEstimate {
        self.estimate_in(
            hist,
            g,
            epsilon,
            rng,
            &mut workspace::EstimatorWorkspace::new(),
        )
    }

    /// [`Estimator::estimate`] reusing caller-owned scratch buffers —
    /// the hot-path entry point. Callers estimating many nodes (a
    /// hierarchy walk, an ε-sweep) hold one warm
    /// [`EstimatorWorkspace`] per worker thread and pass it to every
    /// call, eliminating the per-node dense allocations of the seed
    /// pipeline.
    fn estimate_in<R: Rng + ?Sized>(
        &self,
        hist: &CountOfCounts,
        g: u64,
        epsilon: f64,
        rng: &mut R,
        ws: &mut workspace::EstimatorWorkspace,
    ) -> NodeEstimate;
}
