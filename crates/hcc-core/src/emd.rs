//! Earth-mover's distance between count-of-counts histograms.
//!
//! The paper's error measure (Section 3.1): the minimum number of
//! people that must be added to or removed from groups to transform
//! one histogram into the other. By Lemma 1 this equals the L1
//! distance between the cumulative histograms, and — when the number
//! of groups is fixed — the L1 distance between the unattributed
//! (`Hg`) representations.

use crate::error::CoreError;
use crate::histogram::CountOfCounts;

/// Earth-mover's distance between two histograms with the same number
/// of groups, computed in `O(max_size)` as the L1 distance between the
/// cumulative histograms.
///
/// Panics if the two histograms describe a different number of groups
/// (the metric is only meaningful when mass can be matched
/// one-to-one) or if the distance itself exceeds `u64::MAX`; use
/// [`try_emd`] to get the distinguishing error instead.
///
/// ```
/// use hcc_core::{emd, CountOfCounts};
/// // Twenty size-1 groups, estimated as twenty size-2 groups: one
/// // person must be added per group.
/// let truth = CountOfCounts::from_counts(vec![0, 20]);
/// let est = CountOfCounts::from_counts(vec![0, 0, 20]);
/// assert_eq!(emd(&truth, &est), 20);
/// ```
pub fn emd(a: &CountOfCounts, b: &CountOfCounts) -> u64 {
    // Distinct panic texts: an overflow reported as "unequal group
    // counts" would send whoever reads the message (including engine
    // failed-job diagnostics) down the wrong trail.
    match try_emd(a, b) {
        Ok(d) => d,
        Err(e @ CoreError::GroupCountMismatch { .. }) => {
            panic!("EMD requires histograms with equal group counts: {e}")
        }
        Err(e) => panic!("EMD not representable: {e}"),
    }
}

/// Earth-mover's distance, returning an error when the group counts
/// differ, or [`CoreError::Overflow`] when the distance itself
/// exceeds the `u64` range.
///
/// Counts are untrusted (they arrive from CSV tables), so both the
/// running cumulative sums and the accumulated distance use `u128` —
/// census-scale `K × counts` inputs must not wrap the accumulators.
pub fn try_emd(a: &CountOfCounts, b: &CountOfCounts) -> Result<u64, CoreError> {
    let (ga, gb) = (a.num_groups(), b.num_groups());
    if ga != gb {
        return Err(CoreError::GroupCountMismatch {
            left: ga,
            right: gb,
        });
    }
    let la = a.as_slice();
    let lb = b.as_slice();
    let n = la.len().max(lb.len());
    let mut total = 0u128;
    let mut cum_a = 0u128;
    let mut cum_b = 0u128;
    for i in 0..n {
        cum_a += u128::from(la.get(i).copied().unwrap_or(0));
        cum_b += u128::from(lb.get(i).copied().unwrap_or(0));
        total += cum_a.abs_diff(cum_b);
    }
    u64::try_from(total).map_err(|_| CoreError::Overflow)
}

/// Reference implementation via the dense `Hg` representation:
/// `Σ_i |a.Hg[i] − b.Hg[i]|` (Lemma 1's second characterisation).
/// Expands both histograms to length `G`, so only suitable for tests
/// and small inputs.
pub fn emd_reference(a: &CountOfCounts, b: &CountOfCounts) -> Result<u64, CoreError> {
    let (ga, gb) = (a.num_groups(), b.num_groups());
    if ga != gb {
        return Err(CoreError::GroupCountMismatch {
            left: ga,
            right: gb,
        });
    }
    let da = a.to_unattributed().to_dense();
    let db = b.to_unattributed().to_dense();
    let total: u128 = da
        .iter()
        .zip(db.iter())
        .map(|(&x, &y)| u128::from(x.abs_diff(y)))
        .sum();
    u64::try_from(total).map_err(|_| CoreError::Overflow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_histograms_have_zero_distance() {
        let h = CountOfCounts::from_group_sizes([1, 2, 3, 3]);
        assert_eq!(emd(&h, &h), 0);
    }

    #[test]
    fn paper_motivating_example() {
        // H = all 100 groups of size 1; Ĥ1 = all size 2; Ĥ2 = all size
        // 5. L1/L2 can't distinguish them but EMD can: Ĥ1 needs one
        // person per group (100), Ĥ2 needs four (400).
        let h = CountOfCounts::from_counts(vec![0, 100]);
        let h1 = CountOfCounts::from_counts(vec![0, 0, 100]);
        let h2 = CountOfCounts::from_counts(vec![0, 0, 0, 0, 0, 100]);
        assert_eq!(emd(&h, &h1), 100);
        assert_eq!(emd(&h, &h2), 400);
    }

    #[test]
    fn moving_one_person_costs_one() {
        let a = CountOfCounts::from_group_sizes([2, 2]);
        let b = CountOfCounts::from_group_sizes([2, 3]);
        assert_eq!(emd(&a, &b), 1);
    }

    #[test]
    fn mismatch_is_an_error() {
        let a = CountOfCounts::from_group_sizes([1]);
        let b = CountOfCounts::from_group_sizes([1, 1]);
        assert!(matches!(
            try_emd(&a, &b),
            Err(CoreError::GroupCountMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    #[should_panic(expected = "equal group counts")]
    fn emd_panics_on_mismatch() {
        let a = CountOfCounts::from_group_sizes([1]);
        let b = CountOfCounts::from_group_sizes([1, 1]);
        let _ = emd(&a, &b);
    }

    #[test]
    #[should_panic(expected = "not representable")]
    fn emd_panic_distinguishes_overflow_from_mismatch() {
        // Equal group counts, unrepresentable distance: the panic must
        // name the overflow, not falsely blame the group counts.
        let x = u64::MAX / 2;
        let a = CountOfCounts::from_counts(vec![0, x, x]);
        let b = CountOfCounts::from_counts(vec![2 * x, 0, 0]);
        let _ = emd(&a, &b);
    }

    #[test]
    fn census_scale_counts_do_not_wrap() {
        // Regression: cumulative sums and the distance itself used to
        // accumulate in u64 — adversarial CSV counts near u64::MAX
        // wrapped the accumulators (an overflow panic in debug builds,
        // silently wrong distances in release). Accumulation is u128
        // now, with an explicit error when the distance cannot be
        // represented.
        let x = u64::MAX / 2;
        // Equal group counts (2x each), wildly different shapes.
        let a = CountOfCounts::from_counts(vec![0, x, x]);
        let b = CountOfCounts::from_counts(vec![2 * x, 0, 0]);
        // Distance = |0 − 2x| + |x − 2x| + |2x − 2x| = 3x > u64::MAX.
        assert_eq!(try_emd(&a, &b), Err(CoreError::Overflow));

        // A representable census-scale distance computes exactly.
        let c = CountOfCounts::from_counts(vec![x, x]);
        let d = CountOfCounts::from_counts(vec![2 * x, 0]);
        // Distance = |x − 2x| + |2x − 2x| = x.
        assert_eq!(try_emd(&c, &d), Ok(x));
    }

    #[test]
    fn different_length_dense_vectors() {
        let a = CountOfCounts::from_group_sizes([1, 10]);
        let b = CountOfCounts::from_group_sizes([1, 2]);
        // Move the size-10 group down to size 2: 8 people removed.
        assert_eq!(emd(&a, &b), 8);
    }

    fn hist_strategy(max_groups: u64, max_size: u64) -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec(0..=max_size, 0..=max_groups as usize)
    }

    proptest! {
        /// Lemma 1: cumulative-L1 EMD equals dense-Hg L1 whenever the
        /// group counts agree.
        #[test]
        fn cumulative_emd_matches_hg_reference(
            sizes_a in hist_strategy(30, 40),
            sizes_b_extra in hist_strategy(30, 40),
        ) {
            // Force equal group counts by trimming to the shorter.
            let n = sizes_a.len().min(sizes_b_extra.len());
            let a = CountOfCounts::from_group_sizes(sizes_a[..n].iter().copied());
            let b = CountOfCounts::from_group_sizes(sizes_b_extra[..n].iter().copied());
            prop_assert_eq!(try_emd(&a, &b).unwrap(), emd_reference(&a, &b).unwrap());
        }

        /// EMD is a metric: symmetry and triangle inequality.
        #[test]
        fn emd_is_a_metric(
            all in hist_strategy(20, 30),
        ) {
            let n = all.len() / 3;
            let a = CountOfCounts::from_group_sizes(all[..n].iter().copied());
            let b = CountOfCounts::from_group_sizes(all[n..2 * n].iter().copied());
            let c = CountOfCounts::from_group_sizes(all[2 * n..3 * n].iter().copied());
            let ab = emd(&a, &b);
            let ba = emd(&b, &a);
            prop_assert_eq!(ab, ba);
            prop_assert!(emd(&a, &c) <= ab + emd(&b, &c));
            prop_assert_eq!(emd(&a, &a), 0);
        }
    }
}
