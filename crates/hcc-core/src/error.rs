//! Error type shared by the core representations.

use std::fmt;

/// Errors raised while constructing or converting histogram
/// representations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A run-length encoded unattributed histogram was not sorted by
    /// strictly increasing group size.
    UnsortedRuns {
        /// Index of the offending run.
        index: usize,
    },
    /// A run-length encoded unattributed histogram contained a run
    /// with a zero count.
    EmptyRun {
        /// Index of the offending run.
        index: usize,
    },
    /// A dense unattributed histogram was not non-decreasing.
    NotNonDecreasing {
        /// First index at which the sequence decreases.
        index: usize,
    },
    /// A cumulative histogram was not non-decreasing.
    NotCumulative {
        /// First index at which the sequence decreases.
        index: usize,
    },
    /// Two histograms that were expected to describe the same number
    /// of groups did not.
    GroupCountMismatch {
        /// Group count of the left operand.
        left: u64,
        /// Group count of the right operand.
        right: u64,
    },
    /// An accumulated total exceeded the `u64` range. Counts are
    /// untrusted (they arrive from CSV tables), so census-scale
    /// `K × counts` sums are computed in `u128` and reported as this
    /// error instead of silently wrapping.
    Overflow,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsortedRuns { index } => {
                write!(
                    f,
                    "runs are not sorted by strictly increasing size at index {index}"
                )
            }
            CoreError::EmptyRun { index } => {
                write!(f, "run at index {index} has zero count")
            }
            CoreError::NotNonDecreasing { index } => {
                write!(f, "unattributed histogram decreases at index {index}")
            }
            CoreError::NotCumulative { index } => {
                write!(f, "cumulative histogram decreases at index {index}")
            }
            CoreError::GroupCountMismatch { left, right } => {
                write!(f, "group counts differ: {left} vs {right}")
            }
            CoreError::Overflow => {
                write!(f, "accumulated total exceeds the u64 range")
            }
        }
    }
}

impl std::error::Error for CoreError {}
