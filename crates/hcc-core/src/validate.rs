//! Checks for the problem desiderata of Section 3.
//!
//! The released histograms must satisfy, at every node:
//! * **Integrality** — guaranteed by construction (`u64` counts);
//! * **Nonnegativity** — guaranteed by construction;
//! * **Group size** — `Σ_i Ĥ[i] = τ.G` with `τ.G` public;
//! * **Consistency** — a parent histogram equals the sum of its
//!   children's histograms.
//!
//! The first two are type-level invariants of [`CountOfCounts`]; this
//! module provides runtime checks for the remaining two, used by the
//! integration tests and by debug assertions in the consistency
//! pipeline.

use crate::histogram::CountOfCounts;

/// A violated desideratum, reported by [`check_desiderata`] or
/// [`children_sum_to_parent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesiderataViolation {
    /// The histogram's total group count differs from the public `G`.
    GroupSize {
        /// Expected (public) number of groups.
        expected: u64,
        /// Actual total of the histogram.
        actual: u64,
    },
    /// The sum of the children differs from the parent at some size.
    Consistency {
        /// First group size at which parent and child-sum disagree.
        size: u64,
        /// Parent count at that size.
        parent: u64,
        /// Sum of children counts at that size.
        children_sum: u64,
    },
}

impl std::fmt::Display for DesiderataViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesiderataViolation::GroupSize { expected, actual } => {
                write!(f, "group-size desideratum violated: expected {expected} groups, found {actual}")
            }
            DesiderataViolation::Consistency {
                size,
                parent,
                children_sum,
            } => write!(
                f,
                "consistency violated at size {size}: parent has {parent}, children sum to {children_sum}"
            ),
        }
    }
}

impl std::error::Error for DesiderataViolation {}

/// Verifies the node-local desiderata for a single released histogram
/// against the public group count `g`.
pub fn check_desiderata(h: &CountOfCounts, g: u64) -> Result<(), DesiderataViolation> {
    let actual = h.num_groups();
    if actual != g {
        return Err(DesiderataViolation::GroupSize {
            expected: g,
            actual,
        });
    }
    Ok(())
}

/// Verifies the hierarchical consistency desideratum: the parent's
/// histogram must equal the cell-wise sum of its children.
pub fn children_sum_to_parent<'a, I>(
    parent: &CountOfCounts,
    children: I,
) -> Result<(), DesiderataViolation>
where
    I: IntoIterator<Item = &'a CountOfCounts>,
{
    let sum = CountOfCounts::sum(children);
    if &sum == parent {
        return Ok(());
    }
    let n = parent.len().max(sum.len());
    for i in 0..n as u64 {
        let p = parent.count_of(i);
        let c = sum.count_of(i);
        if p != c {
            return Err(DesiderataViolation::Consistency {
                size: i,
                parent: p,
                children_sum: c,
            });
        }
    }
    unreachable!("histograms differ but all cells equal");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_size_check() {
        let h = CountOfCounts::from_group_sizes([1, 2, 3]);
        assert!(check_desiderata(&h, 3).is_ok());
        assert_eq!(
            check_desiderata(&h, 4),
            Err(DesiderataViolation::GroupSize {
                expected: 4,
                actual: 3
            })
        );
    }

    #[test]
    fn consistency_check_passes_for_exact_sum() {
        let a = CountOfCounts::from_group_sizes([1, 4]);
        let b = CountOfCounts::from_group_sizes([1, 2]);
        let parent = CountOfCounts::sum([&a, &b]);
        assert!(children_sum_to_parent(&parent, [&a, &b]).is_ok());
    }

    #[test]
    fn consistency_check_reports_first_divergent_size() {
        let a = CountOfCounts::from_group_sizes([1, 4]);
        let b = CountOfCounts::from_group_sizes([1, 2]);
        let parent = CountOfCounts::from_group_sizes([1, 1, 2, 5]);
        let err = children_sum_to_parent(&parent, [&a, &b]).unwrap_err();
        assert_eq!(
            err,
            DesiderataViolation::Consistency {
                size: 4,
                parent: 0,
                children_sum: 1
            }
        );
    }

    #[test]
    fn empty_children_match_empty_parent() {
        let parent = CountOfCounts::new();
        assert!(children_sum_to_parent(&parent, std::iter::empty()).is_ok());
    }

    #[test]
    fn violation_messages_render() {
        let v = DesiderataViolation::GroupSize {
            expected: 2,
            actual: 1,
        };
        assert!(v.to_string().contains("expected 2"));
        let v = DesiderataViolation::Consistency {
            size: 3,
            parent: 1,
            children_sum: 0,
        };
        assert!(v.to_string().contains("size 3"));
    }
}
