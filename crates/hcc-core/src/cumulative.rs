//! The cumulative-sum histogram `Hc`.

use crate::error::CoreError;
use crate::histogram::CountOfCounts;

/// Cumulative count-of-counts histogram: `cum[i]` is the number of
/// groups of size `≤ i`. The sequence is non-decreasing and its last
/// entry equals the total group count `G`.
///
/// The paper's `Hc` method adds noise to this representation (its
/// global sensitivity is 1, Lemma 4) and the earth-mover's distance
/// between two count-of-counts histograms is the L1 distance between
/// their cumulative representations (Lemma 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cumulative {
    cum: Vec<u64>,
}

impl Cumulative {
    /// Builds the cumulative histogram of `h`, padded to cover sizes
    /// `0..=k`. Sizes above `k` must have been truncated beforehand
    /// (see [`CountOfCounts::truncated`]).
    ///
    /// Panics if the running total exceeds `u64::MAX`: counts are
    /// untrusted (they arrive from CSV tables), and a silently wrapped
    /// cumulative sum would violate the non-decreasing invariant this
    /// type guarantees. (A served engine converts the panic into a
    /// failed job rather than a corrupted release.)
    pub fn from_hist(h: &CountOfCounts, k: u64) -> Self {
        let dense = h.padded(k);
        let mut cum = Vec::with_capacity(dense.len());
        let mut acc = 0u64;
        for c in dense {
            acc = acc
                .checked_add(c)
                .expect("cumulative histogram total overflows u64");
            cum.push(acc);
        }
        Self { cum }
    }

    /// Validates and wraps a raw non-decreasing vector.
    pub fn from_vec(cum: Vec<u64>) -> Result<Self, CoreError> {
        for (i, w) in cum.windows(2).enumerate() {
            if w[0] > w[1] {
                return Err(CoreError::NotCumulative { index: i + 1 });
            }
        }
        Ok(Self { cum })
    }

    /// The underlying non-decreasing vector; entry `i` covers sizes
    /// `≤ i`.
    pub fn as_slice(&self) -> &[u64] {
        &self.cum
    }

    /// Number of entries (max represented size + 1).
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Whether the representation covers no sizes at all.
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Total number of groups `G` (the last entry, or 0).
    pub fn total(&self) -> u64 {
        self.cum.last().copied().unwrap_or(0)
    }

    /// Converts back to the count-of-counts representation by
    /// differencing.
    pub fn to_hist(&self) -> CountOfCounts {
        let mut counts = Vec::with_capacity(self.cum.len());
        let mut prev = 0u64;
        for &c in &self.cum {
            counts.push(c - prev);
            prev = c;
        }
        CountOfCounts::from_counts(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        // If τ.H = [0, 2, 1, 2] then τ.Hc = [0, 2, 3, 5] (Section 3).
        let h = CountOfCounts::from_counts(vec![0, 2, 1, 2]);
        let c = Cumulative::from_hist(&h, 3);
        assert_eq!(c.as_slice(), &[0, 2, 3, 5]);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn padding_repeats_total() {
        let h = CountOfCounts::from_counts(vec![0, 2]);
        let c = Cumulative::from_hist(&h, 4);
        assert_eq!(c.as_slice(), &[0, 2, 2, 2, 2]);
    }

    #[test]
    fn round_trip() {
        let h = CountOfCounts::from_group_sizes([0, 1, 1, 3, 7, 7, 7]);
        let c = Cumulative::from_hist(&h, 10);
        assert_eq!(c.to_hist(), h);
    }

    #[test]
    fn from_vec_rejects_decreasing() {
        assert_eq!(
            Cumulative::from_vec(vec![0, 3, 2]),
            Err(CoreError::NotCumulative { index: 2 })
        );
        assert!(Cumulative::from_vec(vec![0, 0, 5, 5]).is_ok());
        assert!(Cumulative::from_vec(vec![]).is_ok());
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn wrapping_totals_are_rejected_not_wrapped() {
        // Regression: untrusted counts whose total exceeds u64::MAX
        // used to wrap the accumulator in release builds, producing a
        // *decreasing* "cumulative" vector; now the overflow is caught
        // in every build profile.
        let h = CountOfCounts::from_counts(vec![u64::MAX, 0, 2]);
        let _ = Cumulative::from_hist(&h, 2);
    }

    #[test]
    fn empty_histogram_cumulative() {
        let h = CountOfCounts::new();
        let c = Cumulative::from_hist(&h, 3);
        assert_eq!(c.as_slice(), &[0, 0, 0, 0]);
        assert_eq!(c.total(), 0);
        assert_eq!(c.to_hist(), h);
    }
}
