//! The count-of-counts histogram `H`.

use crate::cumulative::Cumulative;
use crate::unattributed::Unattributed;

/// A count-of-counts histogram: `counts[i]` is the number of groups of
/// size `i`.
///
/// Groups of size zero are representable (`counts[0]`), which matters
/// for datasets such as race-by-block counts where a block (group) can
/// contain zero people of a given race.
///
/// The internal vector is kept *trimmed*: the last entry is non-zero
/// unless the histogram is empty. Two histograms describing the same
/// multiset of group sizes therefore compare equal with `==`.
#[derive(Clone, Debug, PartialEq, Eq, Default, Hash)]
pub struct CountOfCounts {
    counts: Vec<u64>,
}

impl CountOfCounts {
    /// An empty histogram (zero groups).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a histogram from a dense vector where index = group size.
    /// Trailing zeros are trimmed.
    pub fn from_counts(mut counts: Vec<u64>) -> Self {
        while counts.last() == Some(&0) {
            counts.pop();
        }
        Self { counts }
    }

    /// Builds a histogram from an iterator of individual group sizes.
    pub fn from_group_sizes<I: IntoIterator<Item = u64>>(sizes: I) -> Self {
        let mut counts: Vec<u64> = Vec::new();
        for s in sizes {
            let s = usize::try_from(s).expect("group size exceeds addressable memory");
            if s >= counts.len() {
                counts.resize(s + 1, 0);
            }
            counts[s] += 1;
        }
        Self::from_counts(counts)
    }

    /// Number of groups of size `size`.
    pub fn count_of(&self, size: u64) -> u64 {
        usize::try_from(size)
            .ok()
            .and_then(|s| self.counts.get(s).copied())
            .unwrap_or(0)
    }

    /// The largest group size with a non-zero count, or `None` for an
    /// empty histogram.
    pub fn max_size(&self) -> Option<u64> {
        if self.counts.is_empty() {
            None
        } else {
            Some((self.counts.len() - 1) as u64)
        }
    }

    /// Total number of groups `G = Σ_i H[i]`.
    pub fn num_groups(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total number of entities (people) `Σ_i i · H[i]`.
    pub fn num_entities(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64) * c)
            .sum()
    }

    /// Number of distinct group sizes present (non-zero cells,
    /// including size 0 if occupied).
    pub fn distinct_sizes(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// The dense counts, index = size. The last entry is non-zero
    /// unless the histogram is empty.
    pub fn as_slice(&self) -> &[u64] {
        &self.counts
    }

    /// Length of the dense representation (`max_size + 1`, or 0).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the histogram contains no groups at all.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Returns the dense counts padded with zeros to exactly `k + 1`
    /// entries (sizes `0..=k`). Panics if the histogram contains a
    /// group larger than `k`; use [`CountOfCounts::truncated`] first
    /// when the data may exceed the public bound.
    pub fn padded(&self, k: u64) -> Vec<u64> {
        let len = usize::try_from(k).expect("bound too large") + 1;
        assert!(
            self.counts.len() <= len,
            "histogram has groups larger than the requested bound {k}"
        );
        let mut v = self.counts.clone();
        v.resize(len, 0);
        v
    }

    /// The paper's Section 4.1 preprocessing: group sizes larger than
    /// the public bound `K` are changed to `K`. The result has
    /// `max_size() <= K` and the same number of groups.
    pub fn truncated(&self, k: u64) -> Self {
        let klen = usize::try_from(k).expect("bound too large");
        if self.counts.len() <= klen + 1 {
            return self.clone();
        }
        let mut v = self.counts[..=klen].to_vec();
        let overflow: u64 = self.counts[klen + 1..].iter().sum();
        v[klen] += overflow;
        Self::from_counts(v)
    }

    /// Adds `count` groups of size `size`.
    pub fn add_groups(&mut self, size: u64, count: u64) {
        if count == 0 {
            return;
        }
        let s = usize::try_from(size).expect("group size exceeds addressable memory");
        if s >= self.counts.len() {
            self.counts.resize(s + 1, 0);
        }
        self.counts[s] += count;
    }

    /// Removes `count` groups of size `size`, or returns the number of
    /// groups actually present when there are fewer than `count` (the
    /// histogram is left untouched in that case). The trimmed-tail
    /// invariant is restored after removal.
    pub fn remove_groups(&mut self, size: u64, count: u64) -> Result<(), u64> {
        if count == 0 {
            return Ok(());
        }
        let have = self.count_of(size);
        if have < count {
            return Err(have);
        }
        let s = usize::try_from(size).expect("group size exceeds addressable memory");
        self.counts[s] -= count;
        while self.counts.last() == Some(&0) {
            self.counts.pop();
        }
        Ok(())
    }

    /// Adds the counts of `other` into `self` (histogram of the union
    /// of the two group collections).
    pub fn add_assign(&mut self, other: &Self) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Sum of a collection of histograms.
    pub fn sum<'a, I: IntoIterator<Item = &'a Self>>(hists: I) -> Self {
        let mut out = Self::new();
        for h in hists {
            out.add_assign(h);
        }
        out
    }

    /// Converts to the cumulative representation, padded to sizes
    /// `0..=k`.
    pub fn to_cumulative(&self, k: u64) -> Cumulative {
        Cumulative::from_hist(self, k)
    }

    /// Writes the truncated cumulative representation (sizes `0..=k`)
    /// directly into `out`, replacing its contents.
    ///
    /// Equivalent to `self.truncated(k).to_cumulative(k).as_slice()`
    /// but without materialising the truncated histogram or an
    /// intermediate padded vector: the step function is written
    /// run-length — cells past `max_size()` are one `resize` with the
    /// running total, and mass above the bound folds into cell `k` in
    /// place. This is the `Hc` hot path's true view; at the paper's
    /// `K = 100 000` the two intermediate clones it removes dominate
    /// the per-node setup cost.
    ///
    /// Panics (like [`Cumulative::from_hist`]) if the running total
    /// overflows `u64`.
    pub fn to_cumulative_into(&self, k: u64, out: &mut Vec<u64>) {
        let klen = usize::try_from(k).expect("bound too large");
        out.clear();
        out.reserve(klen + 1);
        let mut acc = 0u64;
        let in_bound = self.counts.len().min(klen + 1);
        for &c in &self.counts[..in_bound] {
            acc = acc
                .checked_add(c)
                .expect("cumulative histogram total overflows u64");
            out.push(acc);
        }
        if self.counts.len() > klen + 1 {
            // Sizes above the bound truncate onto cell k (§4.1).
            for &c in &self.counts[klen + 1..] {
                acc = acc
                    .checked_add(c)
                    .expect("cumulative histogram total overflows u64");
            }
            out[klen] = acc;
        } else {
            // The cumulative sum is constant past max_size(): pad the
            // whole tail run in one resize.
            out.resize(klen + 1, acc);
        }
    }

    /// Converts to the run-length encoded unattributed representation.
    pub fn to_unattributed(&self) -> Unattributed {
        Unattributed::from_hist(self)
    }
}

impl FromIterator<u64> for CountOfCounts {
    /// Collects individual group sizes into a histogram.
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self::from_group_sizes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = CountOfCounts::new();
        assert_eq!(h.num_groups(), 0);
        assert_eq!(h.num_entities(), 0);
        assert_eq!(h.max_size(), None);
        assert!(h.is_empty());
        assert_eq!(h.distinct_sizes(), 0);
    }

    #[test]
    fn from_counts_trims_trailing_zeros() {
        let h = CountOfCounts::from_counts(vec![0, 2, 1, 2, 0, 0]);
        assert_eq!(h.as_slice(), &[0, 2, 1, 2]);
        assert_eq!(h.max_size(), Some(3));
    }

    #[test]
    fn paper_running_example() {
        // τ.H = [0, 2, 1, 2] from Section 3: 2 groups of size 1, one of
        // size 2, two of size 3.
        let h = CountOfCounts::from_counts(vec![0, 2, 1, 2]);
        assert_eq!(h.num_groups(), 5);
        assert_eq!(h.num_entities(), 2 + 2 + 6);
        assert_eq!(h.count_of(1), 2);
        assert_eq!(h.count_of(3), 2);
        assert_eq!(h.count_of(4), 0);
        assert_eq!(h.count_of(1000), 0);
        assert_eq!(h.distinct_sizes(), 3);
    }

    #[test]
    fn from_group_sizes_matches_manual() {
        let h = CountOfCounts::from_group_sizes([4, 2, 1, 1]);
        assert_eq!(h.as_slice(), &[0, 2, 1, 0, 1]);
        let collected: CountOfCounts = [4u64, 2, 1, 1].into_iter().collect();
        assert_eq!(collected, h);
    }

    #[test]
    fn size_zero_groups_are_counted() {
        let h = CountOfCounts::from_group_sizes([0, 0, 3]);
        assert_eq!(h.count_of(0), 2);
        assert_eq!(h.num_groups(), 3);
        assert_eq!(h.num_entities(), 3);
    }

    #[test]
    fn truncation_moves_mass_to_bound() {
        let h = CountOfCounts::from_group_sizes([1, 5, 9, 12]);
        let t = h.truncated(6);
        assert_eq!(t.num_groups(), 4);
        assert_eq!(t.count_of(6), 2); // 9 and 12 clamp to 6
        assert_eq!(t.count_of(5), 1);
        assert_eq!(t.max_size(), Some(6));
    }

    #[test]
    fn truncation_noop_when_under_bound() {
        let h = CountOfCounts::from_group_sizes([1, 2, 3]);
        assert_eq!(h.truncated(10), h);
        assert_eq!(h.truncated(3), h);
    }

    #[test]
    fn padded_extends_with_zeros() {
        let h = CountOfCounts::from_counts(vec![0, 2]);
        assert_eq!(h.padded(4), vec![0, 2, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "larger than the requested bound")]
    fn padded_panics_when_exceeding_bound() {
        let h = CountOfCounts::from_group_sizes([10]);
        let _ = h.padded(4);
    }

    #[test]
    fn add_and_remove_groups_keep_the_trimmed_invariant() {
        let mut h = CountOfCounts::from_group_sizes([1, 1, 4]);
        h.add_groups(6, 2);
        assert_eq!(h.count_of(6), 2);
        assert_eq!(h.max_size(), Some(6));
        h.add_groups(2, 0); // no-op, must not grow the vector
        assert_eq!(h.count_of(2), 0);
        assert_eq!(h.len(), 7);

        // Removing the tail groups re-trims down to the next size.
        h.remove_groups(6, 2).unwrap();
        assert_eq!(h.max_size(), Some(4));
        h.remove_groups(4, 1).unwrap();
        assert_eq!(h.max_size(), Some(1));

        // Removing more than present reports what *is* present and
        // leaves the histogram untouched.
        assert_eq!(h.remove_groups(1, 3), Err(2));
        assert_eq!(h.remove_groups(9, 1), Err(0));
        assert_eq!(h, CountOfCounts::from_group_sizes([1, 1]));
        h.remove_groups(1, 2).unwrap();
        assert!(h.is_empty());
        h.remove_groups(5, 0).unwrap(); // zero removal from empty is fine
    }

    #[test]
    fn to_cumulative_into_matches_truncate_then_cumulative() {
        let hists = [
            CountOfCounts::new(),
            CountOfCounts::from_group_sizes([0, 0, 3]),
            CountOfCounts::from_group_sizes([1, 5, 9, 12]),
            CountOfCounts::from_counts(vec![0, 2, 1, 2]),
            CountOfCounts::from_group_sizes((0..200).map(|i| i % 37)),
        ];
        let mut out = Vec::new();
        for h in &hists {
            for k in [0u64, 1, 3, 6, 40, 100] {
                h.to_cumulative_into(k, &mut out);
                let reference = h.truncated(k).to_cumulative(k);
                assert_eq!(out.as_slice(), reference.as_slice(), "hist {h:?} bound {k}");
            }
        }
        // Reuse with a previously longer buffer must fully replace it.
        let h = CountOfCounts::from_group_sizes([2, 2]);
        h.to_cumulative_into(5, &mut out);
        assert_eq!(out, vec![0, 0, 2, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn to_cumulative_into_rejects_wrapping_totals() {
        let h = CountOfCounts::from_counts(vec![u64::MAX, 0, 2]);
        let mut out = Vec::new();
        h.to_cumulative_into(2, &mut out);
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn to_cumulative_into_rejects_wrapping_overflow_mass() {
        // The wrap happens while folding above-bound mass into cell k.
        let h = CountOfCounts::from_counts(vec![u64::MAX, 0, 0, 2]);
        let mut out = Vec::new();
        h.to_cumulative_into(1, &mut out);
    }

    #[test]
    fn add_assign_and_sum() {
        let a = CountOfCounts::from_group_sizes([1, 1, 4]);
        let b = CountOfCounts::from_group_sizes([2]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c, CountOfCounts::from_group_sizes([1, 1, 2, 4]));
        assert_eq!(CountOfCounts::sum([&a, &b]), c);
        assert_eq!(CountOfCounts::sum(std::iter::empty()), CountOfCounts::new());
    }
}
