//! Descriptive statistics of the group-size distribution.
//!
//! Count-of-counts histograms exist to study the *skewness* of a
//! distribution (the paper's opening motivation): how many households
//! are large, what the size quantiles are, how heavy the tail is.
//! This module answers those questions directly from a
//! [`CountOfCounts`] histogram — both for the sensitive input and for
//! a released private estimate.

use crate::histogram::CountOfCounts;
use crate::unattributed::Unattributed;

/// Summary statistics of a group-size distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizeStats {
    /// Number of groups.
    pub groups: u64,
    /// Number of entities (sum of sizes).
    pub entities: u64,
    /// Mean group size.
    pub mean: f64,
    /// Population variance of the group size.
    pub variance: f64,
    /// Fisher skewness (third standardised moment); 0 for symmetric
    /// distributions, large and positive for census-style heavy tails.
    pub skewness: f64,
    /// Smallest group size.
    pub min: u64,
    /// Largest group size.
    pub max: u64,
    /// Median (lower) group size.
    pub median: u64,
}

/// Computes [`SizeStats`]; returns `None` for an empty histogram.
pub fn size_stats(h: &CountOfCounts) -> Option<SizeStats> {
    let groups = h.num_groups();
    if groups == 0 {
        return None;
    }
    let entities = h.num_entities();
    let n = groups as f64;
    let mean = entities as f64 / n;
    let mut m2 = 0.0;
    let mut m3 = 0.0;
    let mut min = u64::MAX;
    let mut max = 0u64;
    for (size, &count) in h.as_slice().iter().enumerate() {
        if count == 0 {
            continue;
        }
        let size = size as u64;
        min = min.min(size);
        max = max.max(size);
        let d = size as f64 - mean;
        m2 += count as f64 * d * d;
        m3 += count as f64 * d * d * d;
    }
    let variance = m2 / n;
    let skewness = if variance > 0.0 {
        (m3 / n) / variance.powf(1.5)
    } else {
        0.0
    };
    Some(SizeStats {
        groups,
        entities,
        mean,
        variance,
        skewness,
        min,
        max,
        median: quantile(h, 0.5).expect("non-empty"),
    })
}

/// The `q`-th quantile (0 ≤ q ≤ 1) of the group-size distribution:
/// the size of the `⌈q·G⌉`-th smallest group (lower quantile
/// convention; `q = 0` is the minimum, `q = 1` the maximum). `None`
/// for an empty histogram.
pub fn quantile(h: &CountOfCounts, q: f64) -> Option<u64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let g = h.num_groups();
    if g == 0 {
        return None;
    }
    let rank = ((q * g as f64).ceil() as u64).clamp(1, g) - 1; // 0-based
    Unattributed::from_hist(h).size_at(rank)
}

/// The size of the `k`-th **largest** group (1-based), the paper's
/// canonical unattributed-histogram query ("what is the size of the
/// kth largest group?"). `None` if fewer than `k` groups exist.
pub fn kth_largest(h: &CountOfCounts, k: u64) -> Option<u64> {
    let g = h.num_groups();
    if k == 0 || k > g {
        return None;
    }
    Unattributed::from_hist(h).size_at(g - k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_stats() {
        assert_eq!(size_stats(&CountOfCounts::new()), None);
        assert_eq!(quantile(&CountOfCounts::new(), 0.5), None);
        assert_eq!(kth_largest(&CountOfCounts::new(), 1), None);
    }

    #[test]
    fn uniform_groups() {
        let h = CountOfCounts::from_group_sizes([3, 3, 3, 3]);
        let s = size_stats(&h).unwrap();
        assert_eq!(s.groups, 4);
        assert_eq!(s.entities, 12);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.skewness, 0.0);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 3);
        assert_eq!(s.median, 3);
    }

    #[test]
    fn heavy_tail_is_positively_skewed() {
        // 99 singletons and one group of 1000.
        let mut sizes = vec![1u64; 99];
        sizes.push(1000);
        let h = CountOfCounts::from_group_sizes(sizes);
        let s = size_stats(&h).unwrap();
        assert!(s.skewness > 5.0, "skewness {}", s.skewness);
        assert_eq!(s.median, 1);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn quantiles_walk_the_sorted_sizes() {
        let h = CountOfCounts::from_group_sizes([1, 2, 3, 4, 5]);
        assert_eq!(quantile(&h, 0.0), Some(1));
        assert_eq!(quantile(&h, 0.2), Some(1));
        assert_eq!(quantile(&h, 0.21), Some(2));
        assert_eq!(quantile(&h, 0.5), Some(3));
        assert_eq!(quantile(&h, 1.0), Some(5));
    }

    #[test]
    fn kth_largest_queries() {
        let h = CountOfCounts::from_group_sizes([5, 1, 9, 9, 2]);
        assert_eq!(kth_largest(&h, 1), Some(9));
        assert_eq!(kth_largest(&h, 2), Some(9));
        assert_eq!(kth_largest(&h, 3), Some(5));
        assert_eq!(kth_largest(&h, 5), Some(1));
        assert_eq!(kth_largest(&h, 6), None);
        assert_eq!(kth_largest(&h, 0), None);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn out_of_range_quantile_panics() {
        let h = CountOfCounts::from_group_sizes([1]);
        let _ = quantile(&h, 1.5);
    }

    #[test]
    fn mean_variance_against_manual_computation() {
        let h = CountOfCounts::from_group_sizes([2, 4, 4, 4, 5, 5, 7, 9]);
        let s = size_stats(&h).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Σ(x−5)² = 9+1+1+1+0+0+4+16 = 32; /8 = 4.
        assert!((s.variance - 4.0).abs() < 1e-12);
    }

    #[test]
    fn size_zero_groups_participate() {
        let h = CountOfCounts::from_group_sizes([0, 0, 6]);
        let s = size_stats(&h).unwrap();
        assert_eq!(s.min, 0);
        assert_eq!(s.median, 0);
        assert_eq!(s.mean, 2.0);
    }
}
