//! The unattributed histogram `Hg`, run-length encoded.

use crate::error::CoreError;
use crate::histogram::CountOfCounts;

/// A maximal run of equal-sized groups inside an unattributed
/// histogram: `count` groups all of size `size`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Run {
    /// The common group size of this run.
    pub size: u64,
    /// How many groups have this size (always ≥ 1).
    pub count: u64,
}

/// The unattributed histogram `Hg`: `Hg[i]` is the size of the `i`-th
/// smallest group. Stored as runs of equal sizes sorted by strictly
/// increasing size, so that algorithms cost `O(#distinct sizes)`
/// instead of `O(G)` — essential when `G` is in the hundreds of
/// millions as in the paper's Census workloads.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Unattributed {
    runs: Vec<Run>,
}

impl Unattributed {
    /// The empty histogram (zero groups).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a count-of-counts histogram. For the paper's
    /// Section 3 example, `H = [0, 2, 1, 2]` yields
    /// `Hg = [1, 1, 2, 3, 3]`, i.e. runs `(1,2), (2,1), (3,2)`.
    pub fn from_hist(h: &CountOfCounts) -> Self {
        let runs = h
            .as_slice()
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(size, &count)| Run {
                size: size as u64,
                count,
            })
            .collect();
        Self { runs }
    }

    /// Validates and wraps raw runs: sizes must be strictly
    /// increasing, counts non-zero.
    pub fn from_runs(runs: Vec<Run>) -> Result<Self, CoreError> {
        for (i, r) in runs.iter().enumerate() {
            if r.count == 0 {
                return Err(CoreError::EmptyRun { index: i });
            }
            if i > 0 && runs[i - 1].size >= r.size {
                return Err(CoreError::UnsortedRuns { index: i });
            }
        }
        Ok(Self { runs })
    }

    /// Builds from raw runs that may be unsorted or contain duplicate
    /// sizes or zero counts; normalises by sorting and coalescing.
    pub fn from_unnormalized_runs(mut runs: Vec<Run>) -> Self {
        runs.retain(|r| r.count > 0);
        runs.sort_unstable_by_key(|r| r.size);
        let mut out: Vec<Run> = Vec::with_capacity(runs.len());
        for r in runs {
            match out.last_mut() {
                Some(last) if last.size == r.size => last.count += r.count,
                _ => out.push(r),
            }
        }
        Self { runs: out }
    }

    /// Builds from a dense non-decreasing sequence of group sizes.
    pub fn from_dense_sorted(sizes: &[u64]) -> Result<Self, CoreError> {
        for (i, w) in sizes.windows(2).enumerate() {
            if w[0] > w[1] {
                return Err(CoreError::NotNonDecreasing { index: i + 1 });
            }
        }
        let mut runs: Vec<Run> = Vec::new();
        for &s in sizes {
            match runs.last_mut() {
                Some(last) if last.size == s => last.count += 1,
                _ => runs.push(Run { size: s, count: 1 }),
            }
        }
        Ok(Self { runs })
    }

    /// The runs, sorted by strictly increasing size.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Total number of groups `G`.
    pub fn num_groups(&self) -> u64 {
        self.runs.iter().map(|r| r.count).sum()
    }

    /// Total number of entities `Σ size · count`.
    pub fn num_entities(&self) -> u64 {
        self.runs.iter().map(|r| r.size * r.count).sum()
    }

    /// Number of distinct group sizes.
    pub fn distinct_sizes(&self) -> usize {
        self.runs.len()
    }

    /// The size of the `i`-th smallest group (0-based), or `None` if
    /// `i ≥ G`. Binary search over run boundaries, `O(log #runs)`.
    pub fn size_at(&self, i: u64) -> Option<u64> {
        let mut lo = 0usize;
        let mut hi = self.runs.len();
        // prefix[r] = number of groups in runs < r; find the run whose
        // half-open interval contains i.
        let mut acc_cache: Vec<u64> = Vec::new();
        // For simplicity and because runs are few, a linear prefix scan
        // is fine; keep binary search only when runs are large.
        if self.runs.len() < 64 {
            let mut acc = 0u64;
            for r in &self.runs {
                if i < acc + r.count {
                    return Some(r.size);
                }
                acc += r.count;
            }
            return None;
        }
        acc_cache.reserve(self.runs.len() + 1);
        acc_cache.push(0);
        for r in &self.runs {
            acc_cache.push(acc_cache.last().unwrap() + r.count);
        }
        if i >= *acc_cache.last().unwrap() {
            return None;
        }
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if acc_cache[mid] <= i {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(self.runs[lo].size)
    }

    /// Expands to the dense `Hg` vector of length `G`. Only for small
    /// histograms (tests, reference implementations).
    pub fn to_dense(&self) -> Vec<u64> {
        let mut v = Vec::with_capacity(usize::try_from(self.num_groups()).unwrap_or(0));
        for r in &self.runs {
            for _ in 0..r.count {
                v.push(r.size);
            }
        }
        v
    }

    /// Converts back to a count-of-counts histogram.
    pub fn to_hist(&self) -> CountOfCounts {
        let max = self.runs.last().map(|r| r.size).unwrap_or(0);
        let mut counts = vec![0u64; usize::try_from(max).expect("size too large") + 1];
        for r in &self.runs {
            counts[usize::try_from(r.size).expect("size too large")] = r.count;
        }
        CountOfCounts::from_counts(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        // τ.H = [0, 2, 1, 2] → τ.Hg = [1, 1, 2, 3, 3].
        let h = CountOfCounts::from_counts(vec![0, 2, 1, 2]);
        let g = Unattributed::from_hist(&h);
        assert_eq!(g.to_dense(), vec![1, 1, 2, 3, 3]);
        assert_eq!(g.num_groups(), 5);
        assert_eq!(g.num_entities(), 10);
        assert_eq!(g.distinct_sizes(), 3);
    }

    #[test]
    fn round_trip_hist() {
        let h = CountOfCounts::from_group_sizes([0, 0, 5, 5, 5, 9]);
        assert_eq!(Unattributed::from_hist(&h).to_hist(), h);
    }

    #[test]
    fn size_at_small() {
        let g = Unattributed::from_runs(vec![
            Run { size: 1, count: 2 },
            Run { size: 2, count: 1 },
            Run { size: 3, count: 2 },
        ])
        .unwrap();
        assert_eq!(g.size_at(0), Some(1));
        assert_eq!(g.size_at(1), Some(1));
        assert_eq!(g.size_at(2), Some(2));
        assert_eq!(g.size_at(4), Some(3));
        assert_eq!(g.size_at(5), None);
    }

    #[test]
    fn size_at_many_runs_uses_binary_search() {
        // More than 64 runs to exercise the binary-search path.
        let runs: Vec<Run> = (0..100)
            .map(|i| Run {
                size: 2 * i,
                count: 3,
            })
            .collect();
        let g = Unattributed::from_runs(runs).unwrap();
        for i in 0..300u64 {
            assert_eq!(g.size_at(i), Some(2 * (i / 3)));
        }
        assert_eq!(g.size_at(300), None);
    }

    #[test]
    fn from_runs_validation() {
        assert_eq!(
            Unattributed::from_runs(vec![Run { size: 3, count: 1 }, Run { size: 3, count: 1 }]),
            Err(CoreError::UnsortedRuns { index: 1 })
        );
        assert_eq!(
            Unattributed::from_runs(vec![Run { size: 3, count: 0 }]),
            Err(CoreError::EmptyRun { index: 0 })
        );
    }

    #[test]
    fn from_unnormalized_runs_coalesces() {
        let g = Unattributed::from_unnormalized_runs(vec![
            Run { size: 5, count: 1 },
            Run { size: 1, count: 2 },
            Run { size: 5, count: 3 },
            Run { size: 2, count: 0 },
        ]);
        assert_eq!(
            g.runs(),
            &[Run { size: 1, count: 2 }, Run { size: 5, count: 4 }]
        );
    }

    #[test]
    fn from_dense_sorted_checks_order() {
        assert!(Unattributed::from_dense_sorted(&[1, 1, 2]).is_ok());
        assert_eq!(
            Unattributed::from_dense_sorted(&[2, 1]),
            Err(CoreError::NotNonDecreasing { index: 1 })
        );
    }

    #[test]
    fn empty() {
        let g = Unattributed::new();
        assert_eq!(g.num_groups(), 0);
        assert_eq!(g.to_hist(), CountOfCounts::new());
        assert_eq!(g.size_at(0), None);
    }
}
