//! Core data structures for differentially private count-of-counts
//! histograms.
//!
//! A *count-of-counts* histogram partitions the rows of a table into
//! groups (e.g. people into households) and reports, for every integer
//! `i`, the number of groups of size `i`. This crate provides the three
//! interchangeable representations used throughout the paper
//! "Differentially Private Hierarchical Count-of-Counts Histograms"
//! (Kuo et al., VLDB 2018):
//!
//! * [`CountOfCounts`] — the histogram `H` itself, `H[i]` = number of
//!   groups of size `i`;
//! * [`Cumulative`] — the cumulative-sum histogram `Hc`,
//!   `Hc[i] = Σ_{j≤i} H[j]`, which is non-decreasing and ends at the
//!   total group count `G`;
//! * [`Unattributed`] — the unattributed histogram `Hg`, where
//!   `Hg[i]` is the size of the `i`-th smallest group. Because `Hg`
//!   has length `G` (potentially hundreds of millions), it is stored
//!   **run-length encoded** as `(size, count)` runs.
//!
//! The error metric of the paper — earth-mover's distance, equal to the
//! L1 distance between cumulative histograms (Lemma 1) — lives in
//! [`mod@emd`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cumulative;
pub mod emd;
pub mod error;
pub mod histogram;
pub mod stats;
pub mod unattributed;
pub mod validate;

pub use cumulative::Cumulative;
pub use emd::{emd, emd_reference, try_emd};
pub use error::CoreError;
pub use histogram::CountOfCounts;
pub use stats::{kth_largest, quantile, size_stats, SizeStats};
pub use unattributed::{Run, Unattributed};
pub use validate::{check_desiderata, children_sum_to_parent, DesiderataViolation};
