//! Sampling utilities for the generators.
//!
//! Only the `rand` core crate is available, so the binomial and
//! log-normal samplers the generators need are implemented here:
//! exact Bernoulli summation for small `n`, a normal approximation
//! (Box–Muller) for large `n` — entirely adequate for *generating*
//! synthetic evaluation data (no privacy property depends on them).

use rand::Rng;

/// Draws a standard normal variate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws `Binomial(n, p)`. Exact for small `n·p·(1−p)`, normal
/// approximation (clamped to `[0, n]`) when the variance is large
/// enough for the approximation to be excellent.
pub fn binomial<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    let variance = n as f64 * p * (1.0 - p);
    if variance > 100.0 {
        let mean = n as f64 * p;
        let x = mean + variance.sqrt() * standard_normal(rng);
        return x.round().clamp(0.0, n as f64) as u64;
    }
    if n > 10_000 {
        // Small p with huge n: Poisson-like; sample via inversion on
        // the geometric gaps between successes.
        let mut count = 0u64;
        let mut i = 0u64;
        let log_q = (1.0 - p).ln();
        loop {
            let u: f64 = 1.0 - rng.gen::<f64>();
            let gap = (u.ln() / log_q).floor() as u64;
            i = i.saturating_add(gap).saturating_add(1);
            if i > n {
                return count;
            }
            count += 1;
        }
    }
    (0..n).filter(|_| rng.gen::<f64>() < p).count() as u64
}

/// Draws a log-normal variate with the given log-scale parameters,
/// rounded to an integer ≥ `min`.
pub fn lognormal_size<R: Rng + ?Sized>(mu: f64, sigma: f64, min: u64, rng: &mut R) -> u64 {
    let x = (mu + sigma * standard_normal(rng)).exp();
    (x.round() as u64).max(min)
}

/// Splits `total` into `weights.len()` multinomial parts with
/// probabilities proportional to `weights`, by iterated binomial
/// conditioning (exact, `O(len)` binomial draws).
pub fn multinomial<R: Rng + ?Sized>(total: u64, weights: &[f64], rng: &mut R) -> Vec<u64> {
    assert!(!weights.is_empty(), "need at least one bucket");
    assert!(
        weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
        "weights must be non-negative"
    );
    let mut remaining = total;
    let mut wsum: f64 = weights.iter().sum();
    assert!(wsum > 0.0, "weights must not all be zero");
    let mut out = Vec::with_capacity(weights.len());
    for (i, &w) in weights.iter().enumerate() {
        if remaining == 0 || i + 1 == weights.len() {
            out.push(remaining);
            remaining = 0;
            wsum -= w;
            continue;
        }
        let p = (w / wsum).clamp(0.0, 1.0);
        let take = binomial(remaining, p, rng);
        out.push(take);
        remaining -= take;
        wsum -= w;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(binomial(0, 0.5, &mut rng), 0);
        assert_eq!(binomial(10, 0.0, &mut rng), 0);
        assert_eq!(binomial(10, 1.0, &mut rng), 10);
    }

    #[test]
    fn binomial_moments_small_n() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20u64;
        let p = 0.3;
        let trials = 20_000;
        let mean: f64 = (0..trials)
            .map(|_| binomial(n, p, &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn binomial_moments_large_n() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 1_000_000u64;
        let p = 0.4;
        let x = binomial(n, p, &mut rng) as f64;
        // Within 6σ of the mean (σ ≈ 490).
        assert!((x - 400_000.0).abs() < 3_000.0, "x {x}");
    }

    #[test]
    fn binomial_sparse_path() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000u64;
        let p = 1e-4; // variance 10 → sparse geometric-gap path
        let trials = 2000;
        let mean: f64 = (0..trials)
            .map(|_| binomial(n, p, &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn multinomial_sums_to_total() {
        let mut rng = StdRng::seed_from_u64(5);
        for total in [0u64, 1, 17, 100_000] {
            let parts = multinomial(total, &[1.0, 2.0, 3.0, 0.0], &mut rng);
            assert_eq!(parts.iter().sum::<u64>(), total);
            assert_eq!(parts.len(), 4);
        }
    }

    #[test]
    fn multinomial_respects_zero_weight() {
        let mut rng = StdRng::seed_from_u64(6);
        // Last bucket takes the remainder by construction, so place
        // the zero weight in the middle.
        let parts = multinomial(50_000, &[1.0, 0.0, 1.0], &mut rng);
        assert_eq!(parts[1], 0);
        assert!((parts[0] as f64 - 25_000.0).abs() < 2_000.0);
    }

    #[test]
    fn lognormal_respects_min() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(lognormal_size(-5.0, 0.1, 1, &mut rng) >= 1);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
