//! A generated evaluation dataset: hierarchy + consistent per-node
//! histograms.

use hcc_consistency::HierarchicalCounts;
use hcc_hierarchy::{hierarchy_to_csv, Hierarchy};

use crate::delta::{DatasetDelta, DeltaError};
use crate::housing::{housing, HousingConfig};
use crate::race::{race, RaceConfig, RaceProfile};
use crate::stats::DatasetStats;
use crate::taxi::{taxi, TaxiConfig};

/// The four evaluation datasets of the paper's Section 6.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Partially synthetic housing (households + group quarters).
    Housing,
    /// Race distribution, dense profile (White).
    RaceWhite,
    /// Race distribution, sparse profile (Hawaiian).
    RaceHawaiian,
    /// NYC taxi pickups per medallion.
    Taxi,
}

impl DatasetKind {
    /// All four kinds, in the paper's table order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Housing,
        DatasetKind::RaceWhite,
        DatasetKind::RaceHawaiian,
        DatasetKind::Taxi,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Housing => "housing",
            DatasetKind::RaceWhite => "race-white",
            DatasetKind::RaceHawaiian => "race-hawaiian",
            DatasetKind::Taxi => "taxi",
        }
    }
}

/// A generated dataset: name, region hierarchy, and the consistent
/// sensitive histograms at every node.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable dataset name.
    pub name: String,
    /// The region hierarchy.
    pub hierarchy: Hierarchy,
    /// Per-node sensitive count-of-counts histograms.
    pub data: HierarchicalCounts,
}

impl Dataset {
    /// Generates a dataset with default parameters scaled by `scale`
    /// relative to each generator's default (pass `1.0` for the
    /// laptop-scale defaults documented per generator).
    pub fn generate(kind: DatasetKind, scale_multiplier: f64, seed: u64) -> Dataset {
        match kind {
            DatasetKind::Housing => housing(&HousingConfig {
                scale: 1e-3 * scale_multiplier,
                seed,
                ..Default::default()
            }),
            DatasetKind::RaceWhite => race(&RaceConfig {
                scale: 0.01 * scale_multiplier,
                seed,
                ..RaceConfig::new(RaceProfile::White)
            }),
            DatasetKind::RaceHawaiian => race(&RaceConfig {
                scale: 0.01 * scale_multiplier,
                seed,
                ..RaceConfig::new(RaceProfile::Hawaiian)
            }),
            DatasetKind::Taxi => taxi(&TaxiConfig {
                scale: 0.1 * scale_multiplier,
                seed,
                ..Default::default()
            }),
        }
    }

    /// Serialises the dataset as the three relational CSV tables the
    /// `hcc` CLI and the engine wire protocol consume: the hierarchy,
    /// one `group_id,region_name` row per group, and one
    /// `entity_id,group_id` row per entity. Group and entity ids are
    /// assigned depth-first over the leaves, so the output is a pure
    /// function of the dataset.
    pub fn to_csv_tables(&self) -> (String, String, String) {
        let hierarchy_csv = hierarchy_to_csv(&self.hierarchy);
        let mut groups = String::from("group_id,region_name\n");
        let mut entities = String::from("entity_id,group_id\n");
        let (mut gid, mut eid) = (0u64, 0u64);
        for leaf in self.hierarchy.leaves() {
            let name = self.hierarchy.name(leaf);
            for run in self.data.node(leaf).to_unattributed().runs() {
                for _ in 0..run.count {
                    groups.push_str(&format!("g{gid},{name}\n"));
                    for _ in 0..run.size {
                        entities.push_str(&format!("e{eid},g{gid}\n"));
                        eid += 1;
                    }
                    gid += 1;
                }
            }
        }
        (hierarchy_csv, groups, entities)
    }

    /// Returns the dataset moved forward by `delta`: same name and
    /// hierarchy, histograms updated in O(delta · depth) by
    /// re-aggregating only the root-to-leaf paths the delta touches
    /// (see [`DatasetDelta::apply_to`]). The result is byte-for-byte
    /// the dataset a full regeneration from the post-delta leaf
    /// tables would produce — the engine's `DERIVE` property test
    /// rests on that equivalence.
    pub fn apply_delta(&self, delta: &DatasetDelta) -> Result<Dataset, DeltaError> {
        let mut data = self.data.clone();
        delta.apply_to(&self.hierarchy, &mut data)?;
        Ok(Dataset {
            name: self.name.clone(),
            hierarchy: self.hierarchy.clone(),
            data,
        })
    }

    /// Summary statistics (the paper's §6.1 table row).
    pub fn stats(&self) -> DatasetStats {
        let root = self.data.node(Hierarchy::ROOT);
        DatasetStats {
            name: self.name.clone(),
            groups: root.num_groups(),
            entities: root.num_entities(),
            unique_sizes: root.distinct_sizes(),
            levels: self.hierarchy.num_levels(),
            nodes: self.hierarchy.num_nodes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_all_kinds_small() {
        for kind in DatasetKind::ALL {
            let ds = Dataset::generate(kind, 0.05, 7);
            assert_eq!(ds.name, ds.name.to_lowercase());
            let stats = ds.stats();
            assert!(stats.groups > 0, "{kind:?} generated no groups");
            ds.data.assert_desiderata(&ds.hierarchy);
        }
    }

    #[test]
    fn apply_delta_on_a_generated_dataset() {
        use crate::delta::DeltaOp;

        let ds = Dataset::generate(DatasetKind::Housing, 0.05, 7);
        // Pick a real leaf and a real group size from the data so the
        // removal is valid at any scale.
        let leaf = ds
            .hierarchy
            .leaves()
            .find(|&l| !ds.data.node(l).is_empty())
            .expect("generated data has an occupied leaf");
        let size = ds.data.node(leaf).max_size().unwrap();
        let delta = DatasetDelta {
            ops: vec![
                DeltaOp::Remove {
                    region: ds.hierarchy.name(leaf).to_string(),
                    size,
                    count: 1,
                },
                DeltaOp::Add {
                    region: ds.hierarchy.name(leaf).to_string(),
                    size: size + 3,
                    count: 2,
                },
            ],
        };
        let next = ds.apply_delta(&delta).unwrap();
        assert_eq!(next.name, ds.name);
        next.data.assert_desiderata(&next.hierarchy);
        let (before, after) = (ds.stats(), next.stats());
        assert_eq!(after.groups, before.groups + 1);
        assert_eq!(after.entities, before.entities - size + 2 * (size + 3));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DatasetKind::Housing.name(), "housing");
        assert_eq!(DatasetKind::Taxi.name(), "taxi");
        assert_eq!(DatasetKind::ALL.len(), 4);
    }
}
