//! A generated evaluation dataset: hierarchy + consistent per-node
//! histograms.

use hcc_consistency::HierarchicalCounts;
use hcc_hierarchy::Hierarchy;

use crate::housing::{housing, HousingConfig};
use crate::race::{race, RaceConfig, RaceProfile};
use crate::stats::DatasetStats;
use crate::taxi::{taxi, TaxiConfig};

/// The four evaluation datasets of the paper's Section 6.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Partially synthetic housing (households + group quarters).
    Housing,
    /// Race distribution, dense profile (White).
    RaceWhite,
    /// Race distribution, sparse profile (Hawaiian).
    RaceHawaiian,
    /// NYC taxi pickups per medallion.
    Taxi,
}

impl DatasetKind {
    /// All four kinds, in the paper's table order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Housing,
        DatasetKind::RaceWhite,
        DatasetKind::RaceHawaiian,
        DatasetKind::Taxi,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Housing => "housing",
            DatasetKind::RaceWhite => "race-white",
            DatasetKind::RaceHawaiian => "race-hawaiian",
            DatasetKind::Taxi => "taxi",
        }
    }
}

/// A generated dataset: name, region hierarchy, and the consistent
/// sensitive histograms at every node.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable dataset name.
    pub name: String,
    /// The region hierarchy.
    pub hierarchy: Hierarchy,
    /// Per-node sensitive count-of-counts histograms.
    pub data: HierarchicalCounts,
}

impl Dataset {
    /// Generates a dataset with default parameters scaled by `scale`
    /// relative to each generator's default (pass `1.0` for the
    /// laptop-scale defaults documented per generator).
    pub fn generate(kind: DatasetKind, scale_multiplier: f64, seed: u64) -> Dataset {
        match kind {
            DatasetKind::Housing => housing(&HousingConfig {
                scale: 1e-3 * scale_multiplier,
                seed,
                ..Default::default()
            }),
            DatasetKind::RaceWhite => race(&RaceConfig {
                scale: 0.01 * scale_multiplier,
                seed,
                ..RaceConfig::new(RaceProfile::White)
            }),
            DatasetKind::RaceHawaiian => race(&RaceConfig {
                scale: 0.01 * scale_multiplier,
                seed,
                ..RaceConfig::new(RaceProfile::Hawaiian)
            }),
            DatasetKind::Taxi => taxi(&TaxiConfig {
                scale: 0.1 * scale_multiplier,
                seed,
                ..Default::default()
            }),
        }
    }

    /// Summary statistics (the paper's §6.1 table row).
    pub fn stats(&self) -> DatasetStats {
        let root = self.data.node(Hierarchy::ROOT);
        DatasetStats {
            name: self.name.clone(),
            groups: root.num_groups(),
            entities: root.num_entities(),
            unique_sizes: root.distinct_sizes(),
            levels: self.hierarchy.num_levels(),
            nodes: self.hierarchy.num_nodes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_all_kinds_small() {
        for kind in DatasetKind::ALL {
            let ds = Dataset::generate(kind, 0.05, 7);
            assert_eq!(ds.name, ds.name.to_lowercase());
            let stats = ds.stats();
            assert!(stats.groups > 0, "{kind:?} generated no groups");
            ds.data.assert_desiderata(&ds.hierarchy);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DatasetKind::Housing.name(), "housing");
        assert_eq!(DatasetKind::Taxi.name(), "taxi");
        assert_eq!(DatasetKind::ALL.len(), 4);
    }
}
