//! Dataset summary statistics (the §6.1 table).

use std::fmt;

/// One row of the paper's dataset-statistics table plus hierarchy
/// shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Total number of groups (paper: "# groups").
    pub groups: u64,
    /// Total number of entities — people or trips (paper:
    /// "# people/trip").
    pub entities: u64,
    /// Number of distinct group sizes at the root (paper:
    /// "# unique size").
    pub unique_sizes: usize,
    /// Number of hierarchy levels (root inclusive).
    pub levels: usize,
    /// Total number of hierarchy nodes.
    pub nodes: usize,
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} groups={:<12} entities={:<12} unique_sizes={:<6} levels={} nodes={}",
            self.name, self.groups, self.entities, self.unique_sizes, self.levels, self.nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_fields() {
        let s = DatasetStats {
            name: "x".into(),
            groups: 10,
            entities: 20,
            unique_sizes: 3,
            levels: 2,
            nodes: 5,
        };
        let out = s.to_string();
        assert!(out.contains("groups=10"));
        assert!(out.contains("unique_sizes=3"));
    }
}
