//! The race-distribution datasets (Section 6.1).
//!
//! Groups are census blocks; the size of a block-group is the number
//! of people of a given race living in it. The paper evaluates on all
//! six major race categories and reports two extremes:
//!
//! * **White** — dense: 226 M people over 11.2 M blocks (mean ≈ 20 per
//!   block), with 1 916 distinct occupancy values — "many groups from
//!   size 0 to size 3000". The `Hc` method dominates here.
//! * **Hawaiian** — sparse: 540 K people over the same 11.2 M blocks
//!   (mean ≈ 0.05), only 224 distinct values, almost all blocks empty.
//!
//! The generators draw block occupancies from mixtures calibrated to
//! those marginal statistics, over the same National/State/County
//! hierarchy as the housing data.

use hcc_consistency::HierarchicalCounts;
use hcc_core::CountOfCounts;
use hcc_hierarchy::{Hierarchy, HierarchyBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::housing::STATES;
use crate::util::lognormal_size;

/// Which race profile to mirror.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RaceProfile {
    /// Dense occupancy (mean ≈ 20/block, long support).
    White,
    /// Sparse occupancy (≈ 97 % empty blocks, short support).
    Hawaiian,
}

impl RaceProfile {
    /// Draws one block's occupancy.
    fn sample_block<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            RaceProfile::White => {
                // 8 % fully empty blocks; otherwise log-normal around
                // a dozen people, tail reaching a few thousand.
                if rng.gen::<f64>() < 0.08 {
                    0
                } else {
                    lognormal_size(2.48, 1.2, 1, rng).min(5_000)
                }
            }
            RaceProfile::Hawaiian => {
                // ~97 % empty; occupied blocks hold a handful, with
                // rare dense pockets (e.g. Hawaiian home lands).
                let u: f64 = rng.gen();
                if u < 0.97 {
                    0
                } else if u < 0.99985 {
                    lognormal_size(0.3, 0.8, 1, rng).min(40)
                } else {
                    rng.gen_range(40..=1_000)
                }
            }
        }
    }

    /// Dataset display name.
    pub fn name(&self) -> &'static str {
        match self {
            RaceProfile::White => "race-white",
            RaceProfile::Hawaiian => "race-hawaiian",
        }
    }
}

/// Configuration for the race generator.
#[derive(Clone, Debug)]
pub struct RaceConfig {
    /// Which race profile to mirror.
    pub profile: RaceProfile,
    /// Fraction of the paper's 11 155 486 blocks (default `0.01`).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// 2 (National/State) or 3 (National/State/County) levels.
    pub levels: usize,
    /// Restrict to CA/OR/WA as the paper does for 3-level runs.
    pub west_coast_only: bool,
}

impl RaceConfig {
    /// Default configuration for a profile.
    pub fn new(profile: RaceProfile) -> Self {
        Self {
            profile,
            scale: 0.01,
            seed: 0xACE5,
            levels: 3,
            west_coast_only: false,
        }
    }
}

/// Total blocks in the full-scale dataset (2010 census).
const FULL_SCALE_BLOCKS: f64 = 11_155_486.0;

/// Builds a race-distribution dataset.
pub fn race(cfg: &RaceConfig) -> Dataset {
    assert!(
        cfg.levels == 2 || cfg.levels == 3,
        "race supports 2 or 3 levels, got {}",
        cfg.levels
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let states: Vec<(&str, f64)> = if cfg.west_coast_only {
        STATES
            .iter()
            .copied()
            .filter(|(n, _)| matches!(*n, "CA" | "OR" | "WA"))
            .collect()
    } else {
        STATES.to_vec()
    };
    let total_pop: f64 = states.iter().map(|(_, p)| p).sum();

    let root = if cfg.west_coast_only {
        "west-coast"
    } else {
        "national"
    };
    let mut b = HierarchyBuilder::new(root);
    let mut leaf_sets: Vec<Vec<NodeId>> = Vec::new();
    for &(name, pop) in &states {
        let s = b.add_child(Hierarchy::ROOT, name);
        if cfg.levels == 3 {
            let n_counties = (pop.round() as usize).max(1);
            leaf_sets.push(
                (0..n_counties)
                    .map(|i| b.add_child(s, format!("{name}-county{i}")))
                    .collect(),
            );
        } else {
            leaf_sets.push(vec![s]);
        }
    }
    let hierarchy = b.build();

    let mut leaves: Vec<(NodeId, CountOfCounts)> = Vec::new();
    for (si, &(_, pop)) in states.iter().enumerate() {
        let state_blocks = (FULL_SCALE_BLOCKS * cfg.scale * pop / total_pop)
            .round()
            .max(1.0) as u64;
        let county_nodes = &leaf_sets[si];
        // Blocks per county: even split with the remainder on the
        // first counties (county sizes already vary via occupancy).
        let per = state_blocks / county_nodes.len() as u64;
        let extra = (state_blocks % county_nodes.len() as u64) as usize;
        for (ci, &county) in county_nodes.iter().enumerate() {
            let n_blocks = per + u64::from(ci < extra);
            let sizes = (0..n_blocks).map(|_| cfg.profile.sample_block(&mut rng));
            leaves.push((county, CountOfCounts::from_group_sizes(sizes)));
        }
    }

    let data = HierarchicalCounts::from_leaves(&hierarchy, leaves)
        .expect("generator produces a uniform-depth hierarchy");
    Dataset {
        name: if cfg.west_coast_only {
            format!("{}-west", cfg.profile.name())
        } else {
            cfg.profile.name().to_string()
        },
        hierarchy,
        data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn white_is_dense() {
        let ds = race(&RaceConfig {
            scale: 0.005,
            ..RaceConfig::new(RaceProfile::White)
        });
        let root = ds.data.node(Hierarchy::ROOT);
        let g = root.num_groups();
        let mean = root.num_entities() as f64 / g as f64;
        assert!((10.0..40.0).contains(&mean), "mean occupancy {mean}");
        // Dense support: hundreds of distinct sizes even at 0.5 % scale.
        assert!(root.distinct_sizes() > 150, "{}", root.distinct_sizes());
        ds.data.assert_desiderata(&ds.hierarchy);
    }

    #[test]
    fn hawaiian_is_sparse() {
        let ds = race(&RaceConfig {
            scale: 0.005,
            ..RaceConfig::new(RaceProfile::Hawaiian)
        });
        let root = ds.data.node(Hierarchy::ROOT);
        let g = root.num_groups();
        // Mean occupancy ≈ 0.05 like the paper (540 K / 11.2 M).
        let mean = root.num_entities() as f64 / g as f64;
        assert!(mean < 0.2, "mean {mean}");
        // Overwhelmingly empty blocks.
        let zero_frac = root.count_of(0) as f64 / g as f64;
        assert!(zero_frac > 0.9, "zero fraction {zero_frac}");
        // Far fewer distinct sizes than the white profile.
        assert!(root.distinct_sizes() < 150, "{}", root.distinct_sizes());
    }

    #[test]
    fn both_profiles_share_block_counts() {
        let w = race(&RaceConfig {
            scale: 0.002,
            ..RaceConfig::new(RaceProfile::White)
        });
        let h = race(&RaceConfig {
            scale: 0.002,
            ..RaceConfig::new(RaceProfile::Hawaiian)
        });
        // Same number of blocks (groups) — only occupancy differs.
        assert_eq!(
            w.data.node(Hierarchy::ROOT).num_groups(),
            h.data.node(Hierarchy::ROOT).num_groups()
        );
    }

    #[test]
    fn two_level_and_west_coast() {
        let ds = race(&RaceConfig {
            levels: 2,
            scale: 0.001,
            ..RaceConfig::new(RaceProfile::White)
        });
        assert_eq!(ds.hierarchy.num_levels(), 2);
        let wc = race(&RaceConfig {
            west_coast_only: true,
            scale: 0.001,
            ..RaceConfig::new(RaceProfile::Hawaiian)
        });
        assert_eq!(wc.hierarchy.level(1).len(), 3);
        assert_eq!(wc.name, "race-hawaiian-west");
    }

    #[test]
    fn deterministic() {
        let cfg = RaceConfig {
            scale: 0.001,
            ..RaceConfig::new(RaceProfile::White)
        };
        assert_eq!(
            race(&cfg).data.node(Hierarchy::ROOT),
            race(&cfg).data.node(Hierarchy::ROOT)
        );
    }
}
