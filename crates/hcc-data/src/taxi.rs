//! The NYC taxi dataset (Section 6.1).
//!
//! From the 2013 trip records the paper forms groups as (medallion,
//! region) pairs: a taxi's pickups inside one leaf region form one
//! group, so the size of the group is that taxi's pickup count there.
//! Full-scale statistics: 360 872 groups, 143.5 M Manhattan trips,
//! 3 128 distinct group sizes — few groups but very large and very
//! diverse sizes, the opposite regime from the census datasets.
//!
//! The hierarchy is Manhattan / {upper, lower} / 28 NTA
//! neighbourhoods (14 per half).

use hcc_consistency::HierarchicalCounts;
use hcc_core::CountOfCounts;
use hcc_hierarchy::{Hierarchy, HierarchyBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::util::lognormal_size;

/// Configuration for the taxi generator.
#[derive(Clone, Debug)]
pub struct TaxiConfig {
    /// Fraction of the paper's 360 872 groups (default `0.1`).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// 3 = Manhattan / upper–lower / 28 NTAs (the paper's geography);
    /// 2 = Manhattan / 28 NTAs (for the 2-level experiments).
    pub levels: usize,
}

impl Default for TaxiConfig {
    fn default() -> Self {
        Self {
            scale: 0.1,
            seed: 0x7A21,
            levels: 3,
        }
    }
}

/// Full-scale group count from the paper's statistics table.
const FULL_SCALE_GROUPS: f64 = 360_872.0;

/// Builds the taxi dataset.
pub fn taxi(cfg: &TaxiConfig) -> Dataset {
    assert!(
        cfg.levels == 2 || cfg.levels == 3,
        "taxi supports 2 or 3 levels, got {}",
        cfg.levels
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = HierarchyBuilder::new("manhattan");
    let mut ntas: Vec<NodeId> = Vec::with_capacity(28);
    if cfg.levels == 3 {
        let upper = b.add_child(Hierarchy::ROOT, "upper");
        let lower = b.add_child(Hierarchy::ROOT, "lower");
        for i in 0..14 {
            ntas.push(b.add_child(upper, format!("nta-u{i}")));
        }
        for i in 0..14 {
            ntas.push(b.add_child(lower, format!("nta-l{i}")));
        }
    } else {
        for i in 0..28 {
            ntas.push(b.add_child(Hierarchy::ROOT, format!("nta-{i}")));
        }
    }
    let hierarchy = b.build();

    let total_groups = (FULL_SCALE_GROUPS * cfg.scale).round().max(28.0) as u64;
    // Neighbourhood popularity varies a lot (midtown vs inwood):
    // weights from a squared-uniform draw.
    let weights: Vec<f64> = (0..28)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() + 0.05;
            u * u
        })
        .collect();
    let wsum: f64 = weights.iter().sum();

    let mut leaves: Vec<(NodeId, CountOfCounts)> = Vec::new();
    for (i, &node) in ntas.iter().enumerate() {
        let n_groups = (total_groups as f64 * weights[i] / wsum).round().max(1.0) as u64;
        // Pickups per (taxi, neighbourhood): log-normal centred near
        // 150 with σ = 1.4 → mean ≈ 400, matching the paper's
        // 143.5 M / 360 K ≈ 398 pickups per group, with a tail into
        // the thousands that yields thousands of distinct sizes at
        // full scale.
        let sizes = (0..n_groups).map(|_| lognormal_size(5.0, 1.4, 1, &mut rng).min(60_000));
        leaves.push((node, CountOfCounts::from_group_sizes(sizes)));
    }

    let data = HierarchicalCounts::from_leaves(&hierarchy, leaves)
        .expect("taxi hierarchy is uniform depth");
    Dataset {
        name: "taxi".to_string(),
        hierarchy,
        data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper_statistics() {
        let ds = taxi(&TaxiConfig::default());
        let root = ds.data.node(Hierarchy::ROOT);
        let g = root.num_groups();
        // 10 % scale of 360 872.
        assert!((30_000..45_000).contains(&g), "groups {g}");
        let mean = root.num_entities() as f64 / g as f64;
        // Paper: ≈ 398 pickups per group.
        assert!((200.0..800.0).contains(&mean), "mean {mean}");
        // Large, diverse sizes.
        assert!(root.distinct_sizes() > 500, "{}", root.distinct_sizes());
        ds.data.assert_desiderata(&ds.hierarchy);
    }

    #[test]
    fn hierarchy_structure() {
        let ds = taxi(&TaxiConfig::default());
        assert_eq!(ds.hierarchy.num_levels(), 3);
        assert_eq!(ds.hierarchy.level(1).len(), 2);
        assert_eq!(ds.hierarchy.level(2).len(), 28);
    }

    #[test]
    fn deterministic() {
        let cfg = TaxiConfig {
            scale: 0.01,
            ..Default::default()
        };
        assert_eq!(
            taxi(&cfg).data.node(Hierarchy::ROOT),
            taxi(&cfg).data.node(Hierarchy::ROOT)
        );
    }

    #[test]
    fn two_level_variant() {
        let ds = taxi(&TaxiConfig {
            levels: 2,
            scale: 0.01,
            ..Default::default()
        });
        assert_eq!(ds.hierarchy.num_levels(), 2);
        assert_eq!(ds.hierarchy.level(1).len(), 28);
        ds.data.assert_desiderata(&ds.hierarchy);
    }

    #[test]
    fn tiny_scale_still_covers_all_neighbourhoods() {
        let ds = taxi(&TaxiConfig {
            scale: 1e-4,
            ..Default::default()
        });
        for leaf in ds.hierarchy.leaves() {
            assert!(ds.data.groups(leaf) >= 1);
        }
    }
}
