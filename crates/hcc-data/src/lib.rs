//! Synthetic dataset generators mirroring the paper's evaluation
//! workloads (Section 6.1).
//!
//! The paper evaluates on four datasets; none of their raw inputs are
//! redistributable (Census microdata, the 2013 NYC taxi dump), and the
//! paper's own "partially synthetic housing" dataset is itself
//! specified as a generative procedure. This crate implements
//! parameterised generators that reproduce the *statistical shape* of
//! each dataset — group-count magnitudes, occupancy distributions,
//! dense-vs-sparse support, heavy tails — which is what drives the
//! relative behaviour of the `Hc`/`Hg`/naive methods:
//!
//! * [`mod@housing`] — per-state household sizes 1–7 with the paper's
//!   binomial tail extension and 50 large outlier group-quarters,
//!   over a national/state/county hierarchy;
//! * [`mod@race`] — census blocks as groups, with a *dense* occupancy
//!   profile (White) and a *sparse* one (Hawaiian);
//! * [`mod@taxi`] — taxi medallions as groups over the Manhattan /
//!   upper–lower / 28-neighbourhood hierarchy, log-normal pickups.
//!
//! Every generator accepts a scale factor so experiments run at laptop
//! scale by default while `scale = 1.0` approximates the paper's full
//! sizes. Generation is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod delta;
pub mod housing;
pub mod race;
pub mod stats;
pub mod taxi;
pub mod util;

pub use dataset::{Dataset, DatasetKind};
pub use delta::{DatasetDelta, DeltaError, DeltaOp};
pub use housing::{housing, HousingConfig};
pub use race::{race, RaceConfig, RaceProfile};
pub use stats::DatasetStats;
pub use taxi::{taxi, TaxiConfig};
