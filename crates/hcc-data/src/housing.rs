//! The partially synthetic housing dataset (Section 6.1).
//!
//! The paper starts from the 2010 Decennial Census Summary File 1
//! household-size tables (truncated at size 7), extends a heavy tail
//! by sampling group counts for sizes ≥ 8 binomially so that the
//! `H[7]/H[6]` ratio persists in expectation, and injects 50 outlier
//! group-quarters facilities with sizes uniform in `[1, 10 000]`.
//! The hierarchy is National / State (50 states + DC + Puerto Rico) /
//! County, with groups assigned to counties proportionally to county
//! size.
//!
//! This module reproduces that exact procedure on top of embedded
//! approximate 2010 state population shares.

use hcc_consistency::HierarchicalCounts;
use hcc_core::CountOfCounts;
use hcc_hierarchy::{Hierarchy, HierarchyBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::util::{binomial, multinomial};

/// Approximate 2010 populations (millions) for the 50 states, DC and
/// Puerto Rico — used as weights for household counts and county
/// fan-out.
pub const STATES: [(&str, f64); 52] = [
    ("CA", 37.3),
    ("TX", 25.1),
    ("NY", 19.4),
    ("FL", 18.8),
    ("IL", 12.8),
    ("PA", 12.7),
    ("OH", 11.5),
    ("MI", 9.9),
    ("GA", 9.7),
    ("NC", 9.5),
    ("NJ", 8.8),
    ("VA", 8.0),
    ("WA", 6.7),
    ("MA", 6.5),
    ("IN", 6.5),
    ("AZ", 6.4),
    ("TN", 6.3),
    ("MO", 6.0),
    ("MD", 5.8),
    ("WI", 5.7),
    ("MN", 5.3),
    ("CO", 5.0),
    ("AL", 4.8),
    ("SC", 4.6),
    ("LA", 4.5),
    ("KY", 4.3),
    ("OR", 3.8),
    ("OK", 3.8),
    ("PR", 3.7),
    ("CT", 3.6),
    ("IA", 3.0),
    ("MS", 3.0),
    ("AR", 2.9),
    ("KS", 2.9),
    ("UT", 2.8),
    ("NV", 2.7),
    ("NM", 2.1),
    ("WV", 1.9),
    ("NE", 1.8),
    ("ID", 1.6),
    ("HI", 1.4),
    ("ME", 1.3),
    ("NH", 1.3),
    ("RI", 1.1),
    ("MT", 1.0),
    ("DE", 0.9),
    ("SD", 0.8),
    ("AK", 0.7),
    ("ND", 0.7),
    ("VT", 0.6),
    ("DC", 0.6),
    ("WY", 0.6),
];

/// Share of households by size 1–7, roughly matching the 2010 SF1
/// distribution the paper's procedure starts from.
const SIZE_SHARES: [f64; 7] = [0.267, 0.336, 0.158, 0.132, 0.061, 0.024, 0.012];

/// Average persons per household, used to convert population weight
/// into household counts.
const PERSONS_PER_HOUSEHOLD: f64 = 2.6;

/// Configuration for the housing generator.
#[derive(Clone, Debug)]
pub struct HousingConfig {
    /// Fraction of the paper's full size to generate
    /// (`1.0` ≈ 240 M groups; the default `1e-3` ≈ 240 K).
    pub scale: f64,
    /// RNG seed; generation is deterministic given the seed.
    pub seed: u64,
    /// Number of outlier group-quarters facilities (paper: 50).
    pub outliers: u64,
    /// Maximum outlier size (paper: 10 000).
    pub outlier_max: u64,
    /// Number of hierarchy levels: 2 (National/State) or
    /// 3 (National/State/County).
    pub levels: usize,
    /// Restrict to the west-coast states CA/OR/WA (the paper does
    /// this for its 3-level census experiments "for computational
    /// reasons").
    pub west_coast_only: bool,
}

impl Default for HousingConfig {
    fn default() -> Self {
        Self {
            scale: 1e-3,
            seed: 0xC0C0,
            outliers: 50,
            outlier_max: 10_000,
            levels: 3,
            west_coast_only: false,
        }
    }
}

/// Which states a config selects.
fn selected_states(cfg: &HousingConfig) -> Vec<(&'static str, f64)> {
    if cfg.west_coast_only {
        STATES
            .iter()
            .copied()
            .filter(|(n, _)| matches!(*n, "CA" | "OR" | "WA"))
            .collect()
    } else {
        STATES.to_vec()
    }
}

/// Counties allocated to a state: roughly one per million residents,
/// at least one.
fn county_count(pop_millions: f64) -> usize {
    (pop_millions.round() as usize).max(1)
}

/// Generates one state's household histogram: SF1-style sizes 1–7,
/// binomial tail for sizes ≥ 8.
fn state_histogram(households: u64, rng: &mut StdRng) -> Vec<u64> {
    // counts[s] = households of size s (index 0 unused for the base).
    let mut counts: Vec<u64> = vec![0];
    for share in SIZE_SHARES {
        counts.push((households as f64 * share).round() as u64);
    }
    // Tail: ratio r = H[7]/H[6] maintained in expectation via
    // Binomial(H[k−1], r) draws, exactly as the paper describes. At
    // tiny scales integer rounding can push the empirical ratio to
    // 1.0, which would never die out; cap it below the asymptotic
    // share ratio (0.012/0.024 = 0.5) with head-room.
    let r = if counts[6] > 0 {
        (counts[7] as f64 / counts[6] as f64).min(0.75)
    } else {
        0.0
    };
    let mut prev = counts[7];
    while prev > 0 && counts.len() < 4096 {
        let next = binomial(prev, r.clamp(0.0, 1.0), rng);
        counts.push(next);
        prev = next;
    }
    counts
}

/// Builds the housing dataset.
pub fn housing(cfg: &HousingConfig) -> Dataset {
    assert!(
        cfg.levels == 2 || cfg.levels == 3,
        "housing supports 2 or 3 levels, got {}",
        cfg.levels
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let states = selected_states(cfg);
    let total_pop: f64 = states.iter().map(|(_, p)| p).sum();

    // Build the hierarchy.
    let root_name = if cfg.west_coast_only {
        "west-coast"
    } else {
        "national"
    };
    let mut b = HierarchyBuilder::new(root_name);
    let mut leaf_nodes: Vec<Vec<NodeId>> = Vec::new(); // per state: its leaves
    for &(name, pop) in &states {
        let s = b.add_child(Hierarchy::ROOT, name);
        if cfg.levels == 3 {
            let counties = (0..county_count(pop))
                .map(|i| b.add_child(s, format!("{name}-county{i}")))
                .collect();
            leaf_nodes.push(counties);
        } else {
            leaf_nodes.push(vec![s]);
        }
    }
    let hierarchy = b.build();

    // Generate state histograms and split them over counties.
    let mut leaves: Vec<(NodeId, CountOfCounts)> = Vec::new();
    let mut state_hists: Vec<Vec<u64>> = Vec::new();
    for &(_, pop) in &states {
        let households = (pop * 1e6 * cfg.scale / PERSONS_PER_HOUSEHOLD)
            .round()
            .max(1.0) as u64;
        state_hists.push(state_histogram(households, &mut rng));
    }

    // Outliers: assigned to states proportionally to population, with
    // sizes uniform in [1, outlier_max].
    for _ in 0..cfg.outliers {
        let mut pick: f64 = rng.gen::<f64>() * total_pop;
        let mut idx = 0usize;
        for (i, &(_, pop)) in states.iter().enumerate() {
            if pick < pop {
                idx = i;
                break;
            }
            pick -= pop;
        }
        let size = rng.gen_range(1..=cfg.outlier_max) as usize;
        let h = &mut state_hists[idx];
        if h.len() <= size {
            h.resize(size + 1, 0);
        }
        h[size] += 1;
    }

    for (si, hist) in state_hists.into_iter().enumerate() {
        let counties = &leaf_nodes[si];
        if counties.len() == 1 {
            leaves.push((counties[0], CountOfCounts::from_counts(hist)));
            continue;
        }
        // County weights: exponential draws give a plausible spread of
        // county sizes; groups split multinomially per size cell.
        let weights: Vec<f64> = counties
            .iter()
            .map(|_| -(1.0 - rng.gen::<f64>()).ln())
            .collect();
        let mut per_county: Vec<Vec<u64>> = vec![vec![0; hist.len()]; counties.len()];
        for (size, &count) in hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let parts = multinomial(count, &weights, &mut rng);
            for (c, &part) in parts.iter().enumerate() {
                per_county[c][size] = part;
            }
        }
        for (c, dense) in per_county.into_iter().enumerate() {
            leaves.push((counties[c], CountOfCounts::from_counts(dense)));
        }
    }

    let data = HierarchicalCounts::from_leaves(&hierarchy, leaves)
        .expect("generator produces a uniform-depth hierarchy");
    Dataset {
        name: if cfg.west_coast_only {
            "housing-west".to_string()
        } else {
            "housing".to_string()
        },
        hierarchy,
        data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_shape() {
        let ds = housing(&HousingConfig::default());
        let root = ds.data.node(Hierarchy::ROOT);
        // ~240 K groups at scale 1e-3 (paper: 240 M at full scale).
        let g = root.num_groups();
        assert!((100_000..500_000).contains(&g), "groups {g}");
        // Average household size between 2 and 7: the base
        // distribution averages ≈ 2.5, and the 50 fixed-count outliers
        // (avg size ≈ 5 000) add noticeably at reduced scale.
        let avg = root.num_entities() as f64 / g as f64;
        assert!((2.0..7.0).contains(&avg), "avg {avg}");
        ds.data.assert_desiderata(&ds.hierarchy);
    }

    #[test]
    fn hierarchy_has_52_states_and_counties() {
        let ds = housing(&HousingConfig::default());
        assert_eq!(ds.hierarchy.level(1).len(), 52);
        assert!(ds.hierarchy.level(2).len() > 200);
        assert!(ds.hierarchy.is_uniform_depth());
    }

    #[test]
    fn two_level_variant() {
        let cfg = HousingConfig {
            levels: 2,
            scale: 1e-4,
            ..Default::default()
        };
        let ds = housing(&cfg);
        assert_eq!(ds.hierarchy.num_levels(), 2);
        assert_eq!(ds.hierarchy.leaves().count(), 52);
    }

    #[test]
    fn west_coast_restriction() {
        let cfg = HousingConfig {
            west_coast_only: true,
            scale: 1e-4,
            ..Default::default()
        };
        let ds = housing(&cfg);
        assert_eq!(ds.hierarchy.level(1).len(), 3);
        assert_eq!(ds.name, "housing-west");
    }

    #[test]
    fn outliers_create_heavy_tail() {
        let cfg = HousingConfig {
            scale: 1e-4,
            ..Default::default()
        };
        let ds = housing(&cfg);
        let max = ds.data.node(Hierarchy::ROOT).max_size().unwrap();
        // At least one outlier should exceed the natural tail (~30).
        assert!(max > 100, "max size {max}");
        assert!(max <= 10_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = HousingConfig {
            scale: 1e-4,
            ..Default::default()
        };
        let a = housing(&cfg);
        let b = housing(&cfg);
        assert_eq!(a.data.node(Hierarchy::ROOT), b.data.node(Hierarchy::ROOT));
    }

    #[test]
    fn scale_controls_size() {
        let small = housing(&HousingConfig {
            scale: 1e-5,
            ..Default::default()
        });
        let large = housing(&HousingConfig {
            scale: 1e-4,
            ..Default::default()
        });
        let gs = small.data.node(Hierarchy::ROOT).num_groups();
        let gl = large.data.node(Hierarchy::ROOT).num_groups();
        assert!(gl > 5 * gs, "{gs} vs {gl}");
    }

    #[test]
    #[should_panic(expected = "2 or 3 levels")]
    fn invalid_levels_rejected() {
        let _ = housing(&HousingConfig {
            levels: 4,
            ..Default::default()
        });
    }
}
