//! Incremental dataset updates: the delta between two releases of the
//! same hierarchy.
//!
//! The paper's motivating workloads drift between releases — census
//! households form and dissolve, taxi medallions change hands — but
//! the region hierarchy is stable for years. A [`DatasetDelta`]
//! captures that drift as a list of per-leaf group edits (add, remove,
//! resize) so a downstream consumer can move a prepared dataset
//! forward in O(delta · depth) instead of re-aggregating everything
//! (see [`HierarchicalCounts::apply_edits`]).
//!
//! Deltas serialise to a small CSV table (`op,region,size,new_size,
//! count`) so they travel over the engine wire protocol's `DELTA`
//! section the same way the base tables do.

use hcc_consistency::{ConsistencyError, HierarchicalCounts, LeafEdit};
use hcc_hierarchy::{Hierarchy, NodeId};

/// One group-level change at a named leaf region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// `count` new groups of size `size` appear in `region`.
    Add {
        /// Leaf region name.
        region: String,
        /// Size of each new group.
        size: u64,
        /// Number of groups added.
        count: u64,
    },
    /// `count` groups of size `size` disappear from `region`.
    Remove {
        /// Leaf region name.
        region: String,
        /// Size of each removed group.
        size: u64,
        /// Number of groups removed.
        count: u64,
    },
    /// `count` groups in `region` change size from `old_size` to
    /// `new_size` (members joined or left, the group persisted).
    Resize {
        /// Leaf region name.
        region: String,
        /// Size before the change.
        old_size: u64,
        /// Size after the change.
        new_size: u64,
        /// Number of groups resized.
        count: u64,
    },
}

impl DeltaOp {
    /// The leaf region the op touches.
    pub fn region(&self) -> &str {
        match self {
            DeltaOp::Add { region, .. }
            | DeltaOp::Remove { region, .. }
            | DeltaOp::Resize { region, .. } => region,
        }
    }
}

/// Errors raised while parsing or applying a delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// A CSV line did not parse.
    Parse {
        /// 1-based line number in the delta CSV.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An op names a region absent from the hierarchy.
    UnknownRegion(String),
    /// An op names an internal (non-leaf) region; groups live only in
    /// leaves.
    NotALeaf(String),
    /// A resize with `old_size == new_size` (a no-op the producer
    /// almost certainly did not intend).
    TrivialResize(String),
    /// An op's `count` exceeds `i64::MAX` and cannot be lowered to a
    /// signed cell edit. Rejected rather than clamped: silently
    /// applying a different count than the delta stated would break
    /// `derive(prepare(T), δ) == prepare(apply(δ, T))`.
    CountOutOfRange(u64),
    /// The underlying cell edits failed (missing groups, overflow).
    Apply(ConsistencyError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Parse { line, message } => {
                write!(f, "delta line {line}: {message}")
            }
            DeltaError::UnknownRegion(r) => {
                write!(f, "delta references unknown region {r:?}")
            }
            DeltaError::NotALeaf(r) => {
                write!(
                    f,
                    "delta region {r:?} is not a leaf (groups live in leaves)"
                )
            }
            DeltaError::TrivialResize(r) => {
                write!(f, "delta resize at {r:?} has old_size == new_size")
            }
            DeltaError::CountOutOfRange(c) => {
                write!(
                    f,
                    "delta op count {c} exceeds the supported maximum {}",
                    i64::MAX
                )
            }
            DeltaError::Apply(e) => write!(f, "applying delta: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<ConsistencyError> for DeltaError {
    fn from(e: ConsistencyError) -> Self {
        DeltaError::Apply(e)
    }
}

/// An ordered batch of group edits against a dataset. Order matters:
/// removals are validated against the running state, so an `Add` can
/// fund a later `Remove` of the same cell.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DatasetDelta {
    /// The edits, applied first to last.
    pub ops: Vec<DeltaOp>,
}

/// Header line of the delta CSV serialisation.
const HEADER: &str = "op,region,size,new_size,count";

impl DatasetDelta {
    /// An empty delta (applying it is the identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ops in the delta.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta contains no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Serialises as the `op,region,size,new_size,count` CSV table
    /// (the `new_size` column is empty for add/remove).
    ///
    /// Region names containing commas, newlines, or carriage returns
    /// are not representable in this line format and panic — the same
    /// restriction the hierarchy/groups tables already impose.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for op in &self.ops {
            assert!(
                !op.region().contains([',', '\n', '\r']),
                "region name {:?} is not CSV-safe",
                op.region()
            );
            match op {
                DeltaOp::Add {
                    region,
                    size,
                    count,
                } => out.push_str(&format!("add,{region},{size},,{count}\n")),
                DeltaOp::Remove {
                    region,
                    size,
                    count,
                } => out.push_str(&format!("remove,{region},{size},,{count}\n")),
                DeltaOp::Resize {
                    region,
                    old_size,
                    new_size,
                    count,
                } => out.push_str(&format!("resize,{region},{old_size},{new_size},{count}\n")),
            }
        }
        out
    }

    /// Parses the CSV form produced by [`DatasetDelta::to_csv`]. The
    /// header line is required; blank lines are ignored; `count` may
    /// be omitted (defaults to 1).
    pub fn from_csv(text: &str) -> Result<Self, DeltaError> {
        let parse_err = |line: usize, message: String| DeltaError::Parse { line, message };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == HEADER => {}
            other => {
                return Err(parse_err(
                    1,
                    format!(
                        "expected header {HEADER:?}, got {:?}",
                        other.map(|(_, l)| l).unwrap_or("")
                    ),
                ))
            }
        }
        let mut ops = Vec::new();
        for (i, line) in lines {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 5 {
                return Err(parse_err(
                    lineno,
                    format!("expected 5 fields, got {}", fields.len()),
                ));
            }
            let num = |name: &str, v: &str| -> Result<u64, DeltaError> {
                v.trim()
                    .parse()
                    .map_err(|_| parse_err(lineno, format!("{name}: cannot parse {v:?}")))
            };
            let count = if fields[4].trim().is_empty() {
                1
            } else {
                num("count", fields[4])?
            };
            let region = fields[1].trim().to_string();
            if region.is_empty() {
                return Err(parse_err(lineno, "empty region name".to_string()));
            }
            let op = match fields[0].trim() {
                "add" => DeltaOp::Add {
                    region,
                    size: num("size", fields[2])?,
                    count,
                },
                "remove" => DeltaOp::Remove {
                    region,
                    size: num("size", fields[2])?,
                    count,
                },
                "resize" => DeltaOp::Resize {
                    region,
                    old_size: num("size", fields[2])?,
                    new_size: num("new_size", fields[3])?,
                    count,
                },
                other => {
                    return Err(parse_err(
                        lineno,
                        format!("unknown op {other:?} (add|remove|resize)"),
                    ))
                }
            };
            ops.push(op);
        }
        Ok(Self { ops })
    }

    /// Resolves every op's region name against `hierarchy` and lowers
    /// the delta to per-leaf cell edits, without touching any data.
    /// Region names must name *leaves* of the hierarchy — the same
    /// membership rule the Groups table imposes.
    pub fn to_edits(&self, hierarchy: &Hierarchy) -> Result<Vec<LeafEdit>, DeltaError> {
        // Name → leaf lookup once per delta, not once per op.
        let by_name: std::collections::HashMap<&str, NodeId> =
            hierarchy.iter().map(|n| (hierarchy.name(n), n)).collect();
        let resolve = |region: &str| -> Result<NodeId, DeltaError> {
            let node = *by_name
                .get(region)
                .ok_or_else(|| DeltaError::UnknownRegion(region.to_string()))?;
            if !hierarchy.is_leaf(node) {
                return Err(DeltaError::NotALeaf(region.to_string()));
            }
            Ok(node)
        };
        let signed = |count: u64| -> Result<i64, DeltaError> {
            i64::try_from(count).map_err(|_| DeltaError::CountOutOfRange(count))
        };
        let mut edits = Vec::with_capacity(self.ops.len() * 2);
        for op in &self.ops {
            match op {
                DeltaOp::Add {
                    region,
                    size,
                    count,
                } => edits.push(LeafEdit {
                    leaf: resolve(region)?,
                    size: *size,
                    delta: signed(*count)?,
                }),
                DeltaOp::Remove {
                    region,
                    size,
                    count,
                } => edits.push(LeafEdit {
                    leaf: resolve(region)?,
                    size: *size,
                    delta: -signed(*count)?,
                }),
                DeltaOp::Resize {
                    region,
                    old_size,
                    new_size,
                    count,
                } => {
                    if old_size == new_size {
                        return Err(DeltaError::TrivialResize(region.clone()));
                    }
                    let leaf = resolve(region)?;
                    edits.push(LeafEdit {
                        leaf,
                        size: *old_size,
                        delta: -signed(*count)?,
                    });
                    edits.push(LeafEdit {
                        leaf,
                        size: *new_size,
                        delta: signed(*count)?,
                    });
                }
            }
        }
        Ok(edits)
    }

    /// Synthetic drift for benchmarks and perf smokes: a delta that
    /// resizes roughly one in `one_in` of `dataset`'s groups (size
    /// `s` → `s + 1`), walking leaves in order until the budget is
    /// spent. Always valid against `dataset` by construction. Used by
    /// the `engine_derive` benchmark and the tier-1 derive-vs-prepare
    /// perf smoke, which must exercise the same delta shape.
    pub fn resize_sample(dataset: &crate::dataset::Dataset, one_in: u64) -> DatasetDelta {
        let total = dataset.data.node(Hierarchy::ROOT).num_groups();
        let mut budget = (total / one_in.max(1)).max(1);
        let mut ops = Vec::new();
        'leaves: for leaf in dataset.hierarchy.leaves() {
            for (size, &count) in dataset.data.node(leaf).as_slice().iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let take = count.min(budget);
                ops.push(DeltaOp::Resize {
                    region: dataset.hierarchy.name(leaf).to_string(),
                    old_size: size as u64,
                    new_size: size as u64 + 1,
                    count: take,
                });
                budget -= take;
                if budget == 0 {
                    break 'leaves;
                }
            }
        }
        DatasetDelta { ops }
    }

    /// Applies the delta to `data` in place, re-aggregating only the
    /// touched root-to-leaf paths (O(ops · depth)). Validation happens
    /// before mutation, so an `Err` leaves `data` untouched.
    pub fn apply_to(
        &self,
        hierarchy: &Hierarchy,
        data: &mut HierarchicalCounts,
    ) -> Result<(), DeltaError> {
        let edits = self.to_edits(hierarchy)?;
        data.apply_edits(hierarchy, &edits)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::CountOfCounts;
    use hcc_hierarchy::HierarchyBuilder;

    fn sample() -> (Hierarchy, NodeId, NodeId) {
        let mut b = HierarchyBuilder::new("nation");
        let va = b.add_child(Hierarchy::ROOT, "VA");
        let fx = b.add_child(va, "fairfax");
        let ar = b.add_child(va, "arlington");
        (b.build(), fx, ar)
    }

    fn delta() -> DatasetDelta {
        DatasetDelta {
            ops: vec![
                DeltaOp::Add {
                    region: "fairfax".into(),
                    size: 3,
                    count: 2,
                },
                DeltaOp::Remove {
                    region: "arlington".into(),
                    size: 1,
                    count: 1,
                },
                DeltaOp::Resize {
                    region: "fairfax".into(),
                    old_size: 2,
                    new_size: 5,
                    count: 1,
                },
            ],
        }
    }

    #[test]
    fn csv_round_trips() {
        let d = delta();
        let csv = d.to_csv();
        assert!(csv.starts_with("op,region,size,new_size,count\n"), "{csv}");
        assert_eq!(DatasetDelta::from_csv(&csv).unwrap(), d);
        // Empty delta round-trips too.
        let empty = DatasetDelta::new();
        assert!(empty.is_empty());
        assert_eq!(DatasetDelta::from_csv(&empty.to_csv()).unwrap(), empty);
    }

    #[test]
    fn csv_parse_errors_name_the_line() {
        for (text, needle) in [
            ("", "expected header"),
            ("nope\n", "expected header"),
            ("op,region,size,new_size,count\nadd,x,3\n", "5 fields"),
            ("op,region,size,new_size,count\nfrob,x,3,,1\n", "unknown op"),
            ("op,region,size,new_size,count\nadd,x,huge,,1\n", "size"),
            ("op,region,size,new_size,count\nadd,,3,,1\n", "empty region"),
        ] {
            let err = DatasetDelta::from_csv(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?}: {err}");
        }
        // Omitted count defaults to 1; blank lines are skipped.
        let d = DatasetDelta::from_csv("op,region,size,new_size,count\n\nadd,x,3,,\n").unwrap();
        assert_eq!(
            d.ops,
            vec![DeltaOp::Add {
                region: "x".into(),
                size: 3,
                count: 1
            }]
        );
    }

    #[test]
    fn resize_sample_is_valid_and_budgeted() {
        use crate::dataset::{Dataset, DatasetKind};

        let ds = Dataset::generate(DatasetKind::Housing, 0.05, 7);
        let delta = DatasetDelta::resize_sample(&ds, 100);
        let touched: u64 = delta
            .ops
            .iter()
            .map(|op| match op {
                DeltaOp::Resize { count, .. } => *count,
                _ => unreachable!("resize_sample emits only resizes"),
            })
            .sum();
        assert_eq!(touched, (ds.stats().groups / 100).max(1));
        // Valid against the dataset by construction, and group count
        // is conserved (resizes move groups, never create them).
        let post = ds.apply_delta(&delta).unwrap();
        assert_eq!(post.stats().groups, ds.stats().groups);
        post.data.assert_desiderata(&post.hierarchy);
    }

    #[test]
    fn apply_matches_full_reaggregation() {
        let (h, fx, ar) = sample();
        let mut data = HierarchicalCounts::from_leaves(
            &h,
            vec![
                (fx, CountOfCounts::from_group_sizes([1, 2, 2])),
                (ar, CountOfCounts::from_group_sizes([1, 4])),
            ],
        )
        .unwrap();
        delta().apply_to(&h, &mut data).unwrap();
        let expected = HierarchicalCounts::from_leaves(
            &h,
            vec![
                (fx, CountOfCounts::from_group_sizes([1, 2, 3, 3, 5])),
                (ar, CountOfCounts::from_group_sizes([4])),
            ],
        )
        .unwrap();
        assert_eq!(data, expected);
        data.assert_desiderata(&h);
    }

    #[test]
    fn membership_and_validity_are_enforced() {
        let (h, fx, _) = sample();
        let base =
            HierarchicalCounts::from_leaves(&h, vec![(fx, CountOfCounts::from_group_sizes([2]))])
                .unwrap();
        let cases = [
            (
                DeltaOp::Add {
                    region: "nowhere".into(),
                    size: 1,
                    count: 1,
                },
                DeltaError::UnknownRegion("nowhere".into()),
            ),
            (
                DeltaOp::Add {
                    region: "VA".into(),
                    size: 1,
                    count: 1,
                },
                DeltaError::NotALeaf("VA".into()),
            ),
            (
                DeltaOp::Resize {
                    region: "fairfax".into(),
                    old_size: 2,
                    new_size: 2,
                    count: 1,
                },
                DeltaError::TrivialResize("fairfax".into()),
            ),
            (
                // A count beyond i64::MAX is rejected, never clamped
                // to a different count than the delta stated.
                DeltaOp::Add {
                    region: "fairfax".into(),
                    size: 1,
                    count: u64::MAX,
                },
                DeltaError::CountOutOfRange(u64::MAX),
            ),
            (
                // An allocation-bomb size is a typed rejection before
                // any dense vector is resized.
                DeltaOp::Add {
                    region: "fairfax".into(),
                    size: u64::MAX,
                    count: 1,
                },
                DeltaError::Apply(ConsistencyError::GroupSizeTooLarge {
                    size: u64::MAX,
                    max: hcc_consistency::MAX_EDIT_SIZE,
                }),
            ),
        ];
        for (op, expected) in cases {
            let mut data = base.clone();
            let d = DatasetDelta { ops: vec![op] };
            assert_eq!(d.apply_to(&h, &mut data), Err(expected));
            assert_eq!(data, base, "failed delta must not mutate");
        }
        // Removing absent groups surfaces the consistency error.
        let mut data = base.clone();
        let d = DatasetDelta {
            ops: vec![DeltaOp::Remove {
                region: "fairfax".into(),
                size: 9,
                count: 1,
            }],
        };
        let err = d.apply_to(&h, &mut data).unwrap_err();
        assert!(
            matches!(
                err,
                DeltaError::Apply(ConsistencyError::MissingGroups { .. })
            ),
            "{err}"
        );
        assert_eq!(data, base);
    }
}
