//! In-memory relational substrate for the paper's problem setup.
//!
//! Section 3 defines the database `D` as three tables:
//!
//! * `Entities(entity_id, group_id)` — **private** (who is in which
//!   group);
//! * `Groups(group_id, region_id)` — public (how many groups per
//!   region);
//! * `Hierarchy(region_id, level0, …, levelL)` — public (region
//!   boundaries), modelled by [`hcc_hierarchy::Hierarchy`].
//!
//! [`Database`] stores the two row tables columnar-style and provides
//! the aggregation pipeline that derives the sensitive per-node
//! count-of-counts histograms:
//!
//! ```sql
//! A := SELECT group_id, COUNT(*) AS size FROM Entities GROUP BY group_id
//! H := SELECT size, COUNT(*) FROM A GROUP BY size       -- per region
//! ```
//!
//! Groups with zero entities contribute to `H[0]`, matching the race
//! datasets where a census block can contain zero members of a race.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;

pub use csv::{CsvError, CsvLoader};

use hcc_core::CountOfCounts;
use hcc_hierarchy::{Hierarchy, NodeId};

/// Row handle into [`Database`]'s Groups table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(u64);

impl GroupId {
    /// Raw index of the group row.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Row handle into [`Database`]'s Entities table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EntityId(u64);

impl EntityId {
    /// Raw index of the entity row.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The Entities + Groups tables, bound to a region [`Hierarchy`].
///
/// Invariant enforced at insertion: every group's region is a *leaf*
/// of the hierarchy (the paper's restriction that groups do not span
/// leaf boundaries).
#[derive(Debug, Clone)]
pub struct Database {
    /// Groups table: group row → leaf region.
    group_region: Vec<NodeId>,
    /// Entities table: entity row → group.
    entity_group: Vec<GroupId>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self {
            group_region: Vec::new(),
            entity_group: Vec::new(),
        }
    }

    /// Inserts a group located in leaf region `region`.
    ///
    /// Panics if `region` is not a leaf of `hierarchy`.
    pub fn add_group(&mut self, hierarchy: &Hierarchy, region: NodeId) -> GroupId {
        assert!(
            hierarchy.is_leaf(region),
            "groups must live in leaf regions, but {} is internal",
            hierarchy.name(region)
        );
        let id = GroupId(self.group_region.len() as u64);
        self.group_region.push(region);
        id
    }

    /// Inserts a group along with `size` member entities in one call.
    pub fn add_group_with_size(
        &mut self,
        hierarchy: &Hierarchy,
        region: NodeId,
        size: u64,
    ) -> GroupId {
        let g = self.add_group(hierarchy, region);
        for _ in 0..size {
            self.add_entity(g);
        }
        g
    }

    /// Inserts one entity belonging to `group`.
    ///
    /// Panics if `group` does not exist.
    pub fn add_entity(&mut self, group: GroupId) -> EntityId {
        assert!(
            group.index() < self.group_region.len(),
            "group {group:?} does not exist"
        );
        let id = EntityId(self.entity_group.len() as u64);
        self.entity_group.push(group);
        id
    }

    /// Number of group rows (public knowledge).
    pub fn num_groups(&self) -> u64 {
        self.group_region.len() as u64
    }

    /// Number of entity rows (sensitive).
    pub fn num_entities(&self) -> u64 {
        self.entity_group.len() as u64
    }

    /// The leaf region of a group (public knowledge).
    pub fn region_of(&self, group: GroupId) -> NodeId {
        self.group_region[group.index()]
    }

    /// First aggregation: `SELECT group_id, COUNT(*) FROM Entities
    /// GROUP BY group_id`, materialised as a dense size-per-group
    /// vector (index = group row). Zero-sized groups appear with 0.
    pub fn group_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.group_region.len()];
        for g in &self.entity_group {
            sizes[g.index()] += 1;
        }
        sizes
    }

    /// The public `τ.G` for every node: number of groups in the
    /// subtree of each region, as a dense per-node vector.
    pub fn groups_per_node(&self, hierarchy: &Hierarchy) -> Vec<u64> {
        let mut counts = vec![0u64; hierarchy.num_nodes()];
        for &leaf in &self.group_region {
            let mut cur = Some(leaf);
            while let Some(n) = cur {
                counts[n.index()] += 1;
                cur = hierarchy.parent(n);
            }
        }
        counts
    }

    /// Second aggregation: the sensitive count-of-counts histogram of
    /// every node, as a dense per-node vector. Computed at the leaves
    /// by a single pass over the group-size vector, then summed up the
    /// tree (the histogram is additive over disjoint regions).
    pub fn node_histograms(&self, hierarchy: &Hierarchy) -> Vec<CountOfCounts> {
        let sizes = self.group_sizes();
        // Bucket group sizes per leaf.
        let mut per_leaf: Vec<Vec<u64>> = vec![Vec::new(); hierarchy.num_nodes()];
        for (g, &size) in sizes.iter().enumerate() {
            per_leaf[self.group_region[g].index()].push(size);
        }
        let mut hists: Vec<CountOfCounts> = per_leaf
            .into_iter()
            .map(CountOfCounts::from_group_sizes)
            .collect();
        // Aggregate bottom-up: iterate levels deepest-first.
        for l in (0..hierarchy.num_levels() - 1).rev() {
            for &node in hierarchy.level(l) {
                let mut acc = std::mem::take(&mut hists[node.index()]);
                for &c in hierarchy.children(node) {
                    let child = hists[c.index()].clone();
                    acc.add_assign(&child);
                }
                hists[node.index()] = acc;
            }
        }
        hists
    }

    /// The count-of-counts histogram of a single node.
    pub fn node_histogram(&self, hierarchy: &Hierarchy, node: NodeId) -> CountOfCounts {
        let sizes = self.group_sizes();
        let mut selected: Vec<u64> = Vec::new();
        for (g, &size) in sizes.iter().enumerate() {
            let leaf = self.group_region[g];
            if hierarchy
                .ancestor_at_level(leaf, hierarchy.level_of(node))
                .is_some_and(|a| a == node)
            {
                selected.push(size);
            }
        }
        CountOfCounts::from_group_sizes(selected)
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_hierarchy::HierarchyBuilder;

    /// The Section 1 example: groups 1..4 with sizes 4, 2, 1, 1 in
    /// leaves a (groups 1, 3) and b (groups 2, 4).
    fn paper_example() -> (Hierarchy, Database, NodeId, NodeId) {
        let mut b = HierarchyBuilder::new("top");
        let a = b.add_child(Hierarchy::ROOT, "a");
        let bb = b.add_child(Hierarchy::ROOT, "b");
        let h = b.build();
        let mut db = Database::new();
        db.add_group_with_size(&h, a, 4);
        db.add_group_with_size(&h, bb, 2);
        db.add_group_with_size(&h, a, 1);
        db.add_group_with_size(&h, bb, 1);
        (h, db, a, bb)
    }

    #[test]
    fn paper_example_histograms() {
        let (h, db, a, bb) = paper_example();
        let hists = db.node_histograms(&h);
        // Htop = [2, 1, 0, 1] over sizes 1..4 → dense [0, 2, 1, 0, 1].
        assert_eq!(hists[Hierarchy::ROOT.index()].as_slice(), &[0, 2, 1, 0, 1]);
        // Ha = groups of sizes {4, 1}.
        assert_eq!(hists[a.index()], CountOfCounts::from_group_sizes([4, 1]));
        // Hb = groups of sizes {2, 1}.
        assert_eq!(hists[bb.index()], CountOfCounts::from_group_sizes([2, 1]));
    }

    #[test]
    fn node_histogram_matches_bulk() {
        let (h, db, a, _) = paper_example();
        let hists = db.node_histograms(&h);
        assert_eq!(db.node_histogram(&h, a), hists[a.index()]);
        assert_eq!(
            db.node_histogram(&h, Hierarchy::ROOT),
            hists[Hierarchy::ROOT.index()]
        );
    }

    #[test]
    fn groups_per_node_counts_subtrees() {
        let (h, db, a, bb) = paper_example();
        let g = db.groups_per_node(&h);
        assert_eq!(g[Hierarchy::ROOT.index()], 4);
        assert_eq!(g[a.index()], 2);
        assert_eq!(g[bb.index()], 2);
    }

    #[test]
    fn zero_sized_groups_show_in_h0() {
        let mut b = HierarchyBuilder::new("top");
        let leaf = b.add_child(Hierarchy::ROOT, "leaf");
        let h = b.build();
        let mut db = Database::new();
        db.add_group(&h, leaf); // empty group
        db.add_group_with_size(&h, leaf, 2);
        let hist = db.node_histogram(&h, leaf);
        assert_eq!(hist.count_of(0), 1);
        assert_eq!(hist.count_of(2), 1);
        assert_eq!(db.num_entities(), 2);
    }

    #[test]
    #[should_panic(expected = "leaf regions")]
    fn internal_region_rejected() {
        let mut b = HierarchyBuilder::new("top");
        let mid = b.add_child(Hierarchy::ROOT, "mid");
        let _leaf = b.add_child(mid, "leaf");
        let h = b.build();
        let mut db = Database::new();
        db.add_group(&h, mid);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn entity_needs_existing_group() {
        let mut db = Database::new();
        db.add_entity(GroupId(0));
    }

    #[test]
    fn group_sizes_aggregation() {
        let (_, db, _, _) = paper_example();
        assert_eq!(db.group_sizes(), vec![4, 2, 1, 1]);
        assert_eq!(db.num_groups(), 4);
        assert_eq!(db.num_entities(), 8);
    }

    #[test]
    fn three_level_aggregation_is_consistent() {
        let mut b = HierarchyBuilder::new("nation");
        let s1 = b.add_child(Hierarchy::ROOT, "s1");
        let s2 = b.add_child(Hierarchy::ROOT, "s2");
        let c1 = b.add_child(s1, "c1");
        let c2 = b.add_child(s1, "c2");
        let c3 = b.add_child(s2, "c3");
        let h = b.build();
        let mut db = Database::new();
        for (leaf, sizes) in [(c1, vec![1, 2]), (c2, vec![2, 2, 5]), (c3, vec![3])] {
            for s in sizes {
                db.add_group_with_size(&h, leaf, s);
            }
        }
        let hists = db.node_histograms(&h);
        // Parent = sum of children at every internal node.
        for node in h.iter() {
            if !h.is_leaf(node) {
                let children: Vec<&CountOfCounts> =
                    h.children(node).iter().map(|c| &hists[c.index()]).collect();
                assert_eq!(
                    hists[node.index()],
                    CountOfCounts::sum(children.into_iter())
                );
            }
        }
        assert_eq!(hists[Hierarchy::ROOT.index()].num_groups(), 6);
        assert_eq!(hists[Hierarchy::ROOT.index()].num_entities(), 15);
    }
}
