//! CSV ingest for the relational substrate.
//!
//! Statistical agencies exchange microdata as flat files; this module
//! loads the paper's two row tables from CSV text:
//!
//! * **groups** — `group_id,region_name` (header optional): declares
//!   each group and the leaf region it lives in;
//! * **entities** — `entity_id,group_id` (header optional): one row
//!   per person/trip, referencing a declared group.
//!
//! Group and entity identifiers are free-form strings (the paper
//! treats them as meaningless random numbers); regions are referenced
//! by their hierarchy *name*, which must be unique among leaves.

use std::collections::HashMap;

use hcc_hierarchy::{Hierarchy, NodeId};

use crate::{Database, GroupId};

/// Errors raised while loading CSV rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A row did not have exactly two comma-separated fields.
    BadRow {
        /// 1-based line number.
        line: usize,
        /// The offending row text.
        row: String,
    },
    /// A groups row referenced a region name that is not a leaf of
    /// the hierarchy.
    UnknownRegion {
        /// 1-based line number.
        line: usize,
        /// The unresolved region name.
        region: String,
    },
    /// The same group id was declared twice.
    DuplicateGroup {
        /// 1-based line number.
        line: usize,
        /// The duplicated group id.
        group: String,
    },
    /// An entities row referenced an undeclared group id.
    UnknownGroup {
        /// 1-based line number.
        line: usize,
        /// The unresolved group id.
        group: String,
    },
    /// Reading a CSV file from disk failed.
    Io {
        /// The file that could not be read.
        path: String,
        /// The underlying `io::Error`, stringified.
        message: String,
    },
    /// A parse failure, attributed to the file it came from (the
    /// file-based loaders wrap the row-level variants in this so the
    /// offending path always reaches the user).
    InFile {
        /// The file the bad row lives in.
        path: String,
        /// The underlying row-level error.
        error: Box<CsvError>,
    },
}

impl CsvError {
    /// Attributes this error to `path` (idempotent for IO errors,
    /// which already carry their path).
    pub fn in_file(self, path: &std::path::Path) -> CsvError {
        match self {
            CsvError::Io { .. } | CsvError::InFile { .. } => self,
            other => CsvError::InFile {
                path: path.display().to_string(),
                error: Box::new(other),
            },
        }
    }
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadRow { line, row } => {
                write!(
                    f,
                    "line {line}: expected two comma-separated fields, got {row:?}"
                )
            }
            CsvError::UnknownRegion { line, region } => {
                write!(
                    f,
                    "line {line}: {region:?} is not a leaf region of the hierarchy"
                )
            }
            CsvError::DuplicateGroup { line, group } => {
                write!(f, "line {line}: group {group:?} declared twice")
            }
            CsvError::UnknownGroup { line, group } => {
                write!(
                    f,
                    "line {line}: entity references undeclared group {group:?}"
                )
            }
            CsvError::Io { path, message } => write!(f, "{path}: {message}"),
            CsvError::InFile { path, error } => write!(f, "{path}: {error}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Incremental CSV loader binding string identifiers to a
/// [`Database`].
#[derive(Debug)]
pub struct CsvLoader<'h> {
    hierarchy: &'h Hierarchy,
    leaf_by_name: HashMap<String, NodeId>,
    group_by_name: HashMap<String, GroupId>,
    db: Database,
}

impl<'h> CsvLoader<'h> {
    /// Creates a loader for the given hierarchy. Leaf names must be
    /// unique (duplicate leaf names panic, as the mapping would be
    /// ambiguous).
    pub fn new(hierarchy: &'h Hierarchy) -> Self {
        let mut leaf_by_name = HashMap::new();
        for leaf in hierarchy.leaves() {
            let prev = leaf_by_name.insert(hierarchy.name(leaf).to_string(), leaf);
            assert!(
                prev.is_none(),
                "duplicate leaf region name {:?}",
                hierarchy.name(leaf)
            );
        }
        Self {
            hierarchy,
            leaf_by_name,
            group_by_name: HashMap::new(),
            db: Database::new(),
        }
    }

    /// Parses one CSV body (no quoting — identifiers are plain
    /// tokens). Lines that are empty or start with `#` are skipped; a
    /// first line equal to the expected header is skipped too.
    fn rows<'a>(text: &'a str, header: &'a str) -> impl Iterator<Item = (usize, &'a str)> + 'a {
        text.lines().enumerate().filter_map(move |(i, l)| {
            let l = l.trim();
            if l.is_empty() || l.starts_with('#') || (i == 0 && l.eq_ignore_ascii_case(header)) {
                None
            } else {
                Some((i + 1, l))
            }
        })
    }

    /// Loads the groups table (`group_id,region_name`).
    pub fn load_groups(&mut self, text: &str) -> Result<usize, CsvError> {
        let mut loaded = 0;
        for (line, row) in Self::rows(text, "group_id,region_name") {
            let (gid, region) = row.split_once(',').ok_or_else(|| CsvError::BadRow {
                line,
                row: row.to_string(),
            })?;
            let (gid, region) = (gid.trim(), region.trim());
            let &node = self
                .leaf_by_name
                .get(region)
                .ok_or_else(|| CsvError::UnknownRegion {
                    line,
                    region: region.to_string(),
                })?;
            if self.group_by_name.contains_key(gid) {
                return Err(CsvError::DuplicateGroup {
                    line,
                    group: gid.to_string(),
                });
            }
            let handle = self.db.add_group(self.hierarchy, node);
            self.group_by_name.insert(gid.to_string(), handle);
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Loads the entities table (`entity_id,group_id`). Groups must
    /// have been loaded first.
    pub fn load_entities(&mut self, text: &str) -> Result<usize, CsvError> {
        let mut loaded = 0;
        for (line, row) in Self::rows(text, "entity_id,group_id") {
            let (_eid, gid) = row.split_once(',').ok_or_else(|| CsvError::BadRow {
                line,
                row: row.to_string(),
            })?;
            let gid = gid.trim();
            let &group = self
                .group_by_name
                .get(gid)
                .ok_or_else(|| CsvError::UnknownGroup {
                    line,
                    group: gid.to_string(),
                })?;
            self.db.add_entity(group);
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Reads `path` and loads it as the groups table. IO and parse
    /// failures both name the file.
    pub fn load_groups_file(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<usize, CsvError> {
        let path = path.as_ref();
        let text = Self::read_file(path)?;
        self.load_groups(&text).map_err(|e| e.in_file(path))
    }

    /// Reads `path` and loads it as the entities table. IO and parse
    /// failures both name the file.
    pub fn load_entities_file(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<usize, CsvError> {
        let path = path.as_ref();
        let text = Self::read_file(path)?;
        self.load_entities(&text).map_err(|e| e.in_file(path))
    }

    fn read_file(path: &std::path::Path) -> Result<String, CsvError> {
        std::fs::read_to_string(path).map_err(|e| CsvError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Finishes loading, returning the populated database.
    pub fn finish(self) -> Database {
        self.db
    }

    /// The database built so far (for inspection mid-load).
    pub fn database(&self) -> &Database {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_hierarchy::HierarchyBuilder;

    fn hierarchy() -> Hierarchy {
        let mut b = HierarchyBuilder::new("top");
        let s = b.add_child(Hierarchy::ROOT, "state");
        b.add_child(s, "alpha");
        b.add_child(s, "beta");
        b.build()
    }

    #[test]
    fn loads_well_formed_tables() {
        let h = hierarchy();
        let mut loader = CsvLoader::new(&h);
        let n = loader
            .load_groups("group_id,region_name\n# comment\ng1,alpha\ng2,alpha\ng3,beta\n\n")
            .unwrap();
        assert_eq!(n, 3);
        let n = loader
            .load_entities("entity_id,group_id\ne1,g1\ne2,g1\ne3,g3\n")
            .unwrap();
        assert_eq!(n, 3);
        let db = loader.finish();
        assert_eq!(db.num_groups(), 3);
        assert_eq!(db.num_entities(), 3);
        assert_eq!(db.group_sizes(), vec![2, 0, 1]);
    }

    #[test]
    fn header_is_optional() {
        let h = hierarchy();
        let mut loader = CsvLoader::new(&h);
        assert_eq!(loader.load_groups("g1,alpha").unwrap(), 1);
    }

    #[test]
    fn rejects_internal_region_reference() {
        let h = hierarchy();
        let mut loader = CsvLoader::new(&h);
        let err = loader.load_groups("g1,state").unwrap_err();
        assert_eq!(
            err,
            CsvError::UnknownRegion {
                line: 1,
                region: "state".into()
            }
        );
    }

    #[test]
    fn rejects_duplicate_group_and_unknown_group() {
        let h = hierarchy();
        let mut loader = CsvLoader::new(&h);
        loader.load_groups("g1,alpha").unwrap();
        let err = loader.load_groups("g1,beta").unwrap_err();
        assert!(matches!(err, CsvError::DuplicateGroup { .. }));
        let err = loader.load_entities("e1,nope").unwrap_err();
        assert!(matches!(err, CsvError::UnknownGroup { .. }));
    }

    #[test]
    fn rejects_malformed_rows() {
        let h = hierarchy();
        let mut loader = CsvLoader::new(&h);
        let err = loader.load_groups("justonefield").unwrap_err();
        assert!(matches!(err, CsvError::BadRow { line: 1, .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn file_loaders_name_the_offending_path() {
        let dir = std::env::temp_dir().join("hcc_tables_csv_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let h = hierarchy();

        // IO failure: missing file.
        let mut loader = CsvLoader::new(&h);
        let missing = dir.join("missing.csv");
        let err = loader.load_groups_file(&missing).unwrap_err();
        assert!(matches!(err, CsvError::Io { .. }));
        assert!(err.to_string().contains("missing.csv"), "{err}");

        // Parse failure: error names both the file and the row.
        let bad = dir.join("bad_groups.csv");
        std::fs::write(&bad, "g1,nowhere\n").unwrap();
        let err = loader.load_groups_file(&bad).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bad_groups.csv"), "{msg}");
        assert!(msg.contains("nowhere"), "{msg}");

        // Happy path through files, entities included.
        let groups = dir.join("groups.csv");
        let entities = dir.join("entities.csv");
        std::fs::write(&groups, "g1,alpha\ng2,beta\n").unwrap();
        std::fs::write(&entities, "e1,g1\ne2,g2\ne3,g9\n").unwrap();
        let mut loader = CsvLoader::new(&h);
        assert_eq!(loader.load_groups_file(&groups).unwrap(), 2);
        let err = loader.load_entities_file(&entities).unwrap_err();
        assert!(err.to_string().contains("entities.csv"), "{err}");
        assert!(err.to_string().contains("g9"), "{err}");
    }

    #[test]
    #[should_panic(expected = "duplicate leaf region name")]
    fn duplicate_leaf_names_panic() {
        let mut b = HierarchyBuilder::new("top");
        b.add_child(Hierarchy::ROOT, "same");
        b.add_child(Hierarchy::ROOT, "same");
        let h = b.build();
        let _ = CsvLoader::new(&h);
    }
}
