//! The Laplace mechanism.
//!
//! Used in this workspace only where the paper itself uses it: the
//! omniscient yardstick baseline (Section 6.2's "interpreting error")
//! and the footnote-6 procedure for estimating the public size bound
//! `K`. Released count-of-counts histograms always use the
//! [geometric mechanism](crate::GeometricMechanism).

use rand::Rng;

/// Laplace mechanism with scale `b = Δ/ε`.
#[derive(Clone, Copy, Debug)]
pub struct LaplaceMechanism {
    scale: f64,
}

impl LaplaceMechanism {
    /// Mechanism for a query with L1 sensitivity `sensitivity` under
    /// budget `epsilon`.
    pub fn new(epsilon: f64, sensitivity: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive and finite, got {epsilon}"
        );
        assert!(
            sensitivity.is_finite() && sensitivity > 0.0,
            "sensitivity must be positive and finite, got {sensitivity}"
        );
        Self {
            scale: sensitivity / epsilon,
        }
    }

    /// The noise scale `b = Δ/ε`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Noise variance `2b²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// Draws one Laplace(0, b) noise value by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u ∈ (-0.5, 0.5]; inverse CDF of the Laplace distribution.
        let u: f64 = rng.gen::<f64>() - 0.5;
        -self.scale * u.signum() * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
    }

    /// Adds noise to one true count.
    pub fn privatize<R: Rng + ?Sized>(&self, value: u64, rng: &mut R) -> f64 {
        value as f64 + self.sample(rng)
    }

    /// Adds i.i.d. noise to a counts vector.
    pub fn privatize_vec<R: Rng + ?Sized>(&self, values: &[u64], rng: &mut R) -> Vec<f64> {
        values.iter().map(|&v| self.privatize(v, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scale_and_variance() {
        let m = LaplaceMechanism::new(0.5, 1.0);
        assert_eq!(m.scale(), 2.0);
        assert_eq!(m.variance(), 8.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_nonpositive_epsilon() {
        let _ = LaplaceMechanism::new(-1.0, 1.0);
    }

    #[test]
    fn empirical_moments() {
        let m = LaplaceMechanism::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let mut sum = 0f64;
        let mut sumsq = 0f64;
        for _ in 0..n {
            let x = m.sample(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 2.0).abs() < 0.1, "var {var}, expected 2");
    }

    #[test]
    fn privatize_centers_on_value() {
        let m = LaplaceMechanism::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| m.privatize(100, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.05);
    }
}
