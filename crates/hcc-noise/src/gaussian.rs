//! Extension: the discrete Gaussian mechanism and zCDP accounting.
//!
//! After this paper, the U.S. Census Bureau's production disclosure
//! avoidance system (the 2020 TopDown Algorithm) moved from pure-ε
//! geometric noise to **discrete Gaussian** noise accounted in
//! zero-concentrated differential privacy (zCDP) — a natural
//! future-work direction for hierarchical count-of-counts releases,
//! since zCDP composes more gracefully over many levels.
//!
//! The sampler is the exact rejection scheme of Canonne, Kamath &
//! Steinke ("The Discrete Gaussian for Differential Privacy", 2020):
//! propose from a discrete Laplace of scale `t ≈ σ`, accept with
//! probability `exp(−(|y| − σ²/t)² / (2σ²))`. Outputs are integers;
//! no continuous Gaussian is ever materialised.

use rand::Rng;

use crate::geometric::DoubleGeometric;

/// The discrete Gaussian distribution `N_ℤ(0, σ²)`:
/// `P(X = k) ∝ exp(−k²/(2σ²))` over the integers.
#[derive(Clone, Copy, Debug)]
pub struct DiscreteGaussian {
    sigma: f64,
    proposal: DoubleGeometric,
    t: f64,
}

impl DiscreteGaussian {
    /// Creates the distribution with standard-deviation parameter
    /// `sigma` (the true variance is marginally below `σ²` for small
    /// `σ`; they agree rapidly as `σ` grows).
    pub fn new(sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "sigma must be positive and finite, got {sigma}"
        );
        let t = sigma.floor() + 1.0;
        // Discrete Laplace with scale t: P(y) ∝ e^(−|y|/t); reuse the
        // double-geometric sampler with ε/Δ = 1/t.
        let proposal = DoubleGeometric::new(1.0, t);
        Self { sigma, proposal, t }
    }

    /// The configured `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one sample by rejection from the discrete Laplace
    /// proposal. Expected number of iterations is < 2 for all `σ`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let s2 = self.sigma * self.sigma;
        loop {
            let y = self.proposal.sample(rng);
            let d = (y.abs() as f64) - s2 / self.t;
            let accept_p = (-(d * d) / (2.0 * s2)).exp();
            if rng.gen::<f64>() < accept_p {
                return y;
            }
        }
    }
}

/// The discrete Gaussian mechanism: adds `N_ℤ(0, σ²)` noise to every
/// coordinate of an integer query with L2 sensitivity `Δ₂`, satisfying
/// `Δ₂²/(2σ²)`-zCDP.
#[derive(Clone, Copy, Debug)]
pub struct GaussianMechanism {
    dist: DiscreteGaussian,
    l2_sensitivity: f64,
}

impl GaussianMechanism {
    /// Mechanism achieving `rho`-zCDP for a query with L2 sensitivity
    /// `l2_sensitivity`: `σ = Δ₂ / √(2ρ)`.
    pub fn with_rho(rho: f64, l2_sensitivity: f64) -> Self {
        assert!(rho.is_finite() && rho > 0.0, "rho must be positive");
        assert!(
            l2_sensitivity.is_finite() && l2_sensitivity > 0.0,
            "sensitivity must be positive"
        );
        Self {
            dist: DiscreteGaussian::new(l2_sensitivity / (2.0 * rho).sqrt()),
            l2_sensitivity,
        }
    }

    /// The zCDP parameter `ρ = Δ₂²/(2σ²)` of one invocation.
    pub fn rho(&self) -> f64 {
        let s = self.dist.sigma();
        self.l2_sensitivity * self.l2_sensitivity / (2.0 * s * s)
    }

    /// The per-coordinate noise distribution.
    pub fn distribution(&self) -> DiscreteGaussian {
        self.dist
    }

    /// Adds noise to one true count.
    pub fn privatize<R: Rng + ?Sized>(&self, value: u64, rng: &mut R) -> i64 {
        let v = i64::try_from(value).expect("count exceeds i64::MAX");
        v.saturating_add(self.dist.sample(rng))
    }

    /// Adds i.i.d. noise to a counts vector.
    pub fn privatize_vec<R: Rng + ?Sized>(&self, values: &[u64], rng: &mut R) -> Vec<i64> {
        values.iter().map(|&v| self.privatize(v, rng)).collect()
    }
}

/// zCDP budget accounting: `ρ` adds linearly under composition, and a
/// total of `ρ` implies `(ε, δ)`-DP with
/// `ε = ρ + 2·√(ρ·ln(1/δ))` for every `δ > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZCdpBudget {
    total: f64,
    spent: f64,
}

impl ZCdpBudget {
    /// A fresh budget of `rho`.
    pub fn new(rho: f64) -> Self {
        assert!(rho.is_finite() && rho > 0.0, "total rho must be positive");
        Self {
            total: rho,
            spent: 0.0,
        }
    }

    /// The configured total ρ.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ρ consumed so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// ρ still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Even per-level split, mirroring Algorithm 1's `ε/(L+1)`. Under
    /// zCDP the per-level cost also simply adds.
    pub fn per_level(&self, parts: usize) -> f64 {
        assert!(parts > 0, "cannot split a budget into zero parts");
        self.total / parts as f64
    }

    /// Records consumption of `rho` under composition, failing when
    /// the budget would be exceeded (with the same 1e-9 relative
    /// tolerance as the pure-ε accountant).
    pub fn spend(&mut self, rho: f64) -> Result<(), crate::budget::BudgetError> {
        if !(rho.is_finite() && rho > 0.0) {
            return Err(crate::budget::BudgetError::NonPositive { amount: rho });
        }
        let tol = self.total * 1e-9;
        if self.spent + rho > self.total + tol {
            return Err(crate::budget::BudgetError::Exhausted {
                requested: rho,
                remaining: self.remaining(),
            });
        }
        self.spent += rho;
        Ok(())
    }

    /// The `(ε, δ)`-DP guarantee implied by the *total* budget:
    /// `ε(δ) = ρ + 2√(ρ ln(1/δ))`.
    pub fn epsilon(&self, delta: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&delta) && delta > 0.0,
            "delta must be in (0, 1)"
        );
        self.total + 2.0 * (self.total * (1.0 / delta).ln()).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_rejected() {
        let _ = DiscreteGaussian::new(0.0);
    }

    #[test]
    fn empirical_moments_match_sigma() {
        for &sigma in &[1.0f64, 3.0, 10.0] {
            let d = DiscreteGaussian::new(sigma);
            let mut rng = StdRng::seed_from_u64(71);
            let n = 100_000;
            let mut sum = 0f64;
            let mut sumsq = 0f64;
            for _ in 0..n {
                let x = d.sample(&mut rng) as f64;
                sum += x;
                sumsq += x * x;
            }
            let mean = sum / n as f64;
            let var = sumsq / n as f64 - mean * mean;
            assert!(mean.abs() < 0.05 * sigma + 0.02, "σ={sigma}: mean {mean}");
            assert!(
                (var - sigma * sigma).abs() < 0.05 * sigma * sigma + 0.05,
                "σ={sigma}: var {var} vs {}",
                sigma * sigma
            );
        }
    }

    #[test]
    fn distribution_is_symmetric() {
        let d = DiscreteGaussian::new(2.0);
        let mut rng = StdRng::seed_from_u64(72);
        let n = 200_000;
        let mut pos = 0i64;
        let mut neg = 0i64;
        for _ in 0..n {
            match d.sample(&mut rng).signum() {
                1 => pos += 1,
                -1 => neg += 1,
                _ => {}
            }
        }
        let imbalance = (pos - neg).abs() as f64 / n as f64;
        assert!(imbalance < 0.01, "P(+) − P(−) = {imbalance}");
    }

    #[test]
    fn mechanism_rho_round_trips() {
        let m = GaussianMechanism::with_rho(0.125, 2.0);
        assert!((m.rho() - 0.125).abs() < 1e-12);
        // σ = Δ/√(2ρ) = 2/0.5 = 4.
        assert!((m.distribution().sigma() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn privatize_vec_centers_on_values() {
        let m = GaussianMechanism::with_rho(0.5, 1.0);
        let mut rng = StdRng::seed_from_u64(73);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| m.privatize(50, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 50.0).abs() < 0.1, "mean {mean}");
        assert_eq!(m.privatize_vec(&[1, 2, 3], &mut rng).len(), 3);
    }

    #[test]
    fn zcdp_budget_accounting() {
        let mut b = ZCdpBudget::new(0.3);
        let lvl = b.per_level(3);
        assert!((lvl - 0.1).abs() < 1e-15);
        for _ in 0..3 {
            b.spend(lvl).unwrap();
        }
        assert!(b.remaining() < 1e-9);
        assert!(b.spend(0.1).is_err());
        assert!(b.spend(-1.0).is_err());
    }

    #[test]
    fn zcdp_to_approximate_dp() {
        let b = ZCdpBudget::new(0.5);
        // ε(1e-10) = 0.5 + 2√(0.5·ln 1e10) ≈ 7.29.
        let eps = b.epsilon(1e-10);
        assert!((eps - 7.29).abs() < 0.05, "got {eps}");
        // Smaller δ costs more ε.
        assert!(b.epsilon(1e-12) > eps);
    }

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn invalid_delta_panics() {
        let _ = ZCdpBudget::new(0.1).epsilon(0.0);
    }
}
