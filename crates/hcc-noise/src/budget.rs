//! Privacy-budget accounting.
//!
//! Algorithm 1 splits the total budget ε evenly across the `L + 1`
//! levels of the hierarchy (sequential composition across levels;
//! parallel composition *within* a level because sibling regions are
//! disjoint). [`PrivacyBudget`] makes that arithmetic explicit and
//! fail-fast: overspending is a programming error surfaced as
//! [`BudgetError::Exhausted`], not a silent privacy violation.

use std::fmt;

/// Errors from budget accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetError {
    /// An attempt was made to spend more budget than remains.
    Exhausted {
        /// Budget requested by the caller.
        requested: f64,
        /// Budget still available.
        remaining: f64,
    },
    /// A split or spend of a non-positive amount was requested.
    NonPositive {
        /// The offending amount.
        amount: f64,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::Exhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested {requested}, remaining {remaining}"
            ),
            BudgetError::NonPositive { amount } => {
                write!(f, "privacy budget amounts must be positive, got {amount}")
            }
        }
    }
}

impl std::error::Error for BudgetError {}

/// Tracks a total ε-DP budget and how much of it has been consumed by
/// sequential composition.
///
/// A tiny tolerance (1e-9, relative to the total) absorbs the
/// floating-point rounding of repeated `ε/(L+1)` splits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
}

impl PrivacyBudget {
    /// A fresh budget of `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "total privacy budget must be positive and finite, got {epsilon}"
        );
        Self {
            total: epsilon,
            spent: 0.0,
        }
    }

    /// The configured total ε.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Budget consumed so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// The per-level allocation `ε / parts` used by Algorithm 1
    /// (`parts = L + 1` levels).
    pub fn per_level(&self, parts: usize) -> f64 {
        assert!(parts > 0, "cannot split a budget into zero parts");
        self.total / parts as f64
    }

    /// Records consumption of `amount` under sequential composition.
    pub fn spend(&mut self, amount: f64) -> Result<(), BudgetError> {
        if !(amount.is_finite() && amount > 0.0) {
            return Err(BudgetError::NonPositive { amount });
        }
        let tol = self.total * 1e-9;
        if self.spent + amount > self.total + tol {
            return Err(BudgetError::Exhausted {
                requested: amount,
                remaining: self.remaining(),
            });
        }
        self.spent += amount;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_level_split() {
        let b = PrivacyBudget::new(1.0);
        // 3-level hierarchy (root + 2): ε/3 each.
        assert!((b.per_level(3) - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn spend_tracks_and_exhausts() {
        let mut b = PrivacyBudget::new(1.0);
        let lvl = b.per_level(3);
        b.spend(lvl).unwrap();
        b.spend(lvl).unwrap();
        b.spend(lvl).unwrap();
        assert!(b.remaining() < 1e-9);
        let err = b.spend(lvl).unwrap_err();
        assert!(matches!(err, BudgetError::Exhausted { .. }));
    }

    #[test]
    fn float_rounding_of_even_splits_is_tolerated() {
        // ε/7 seven times does not sum to exactly ε in f64.
        let mut b = PrivacyBudget::new(0.1);
        let lvl = b.per_level(7);
        for _ in 0..7 {
            b.spend(lvl).unwrap();
        }
    }

    #[test]
    fn rejects_nonpositive_spend() {
        let mut b = PrivacyBudget::new(1.0);
        assert!(matches!(b.spend(0.0), Err(BudgetError::NonPositive { .. })));
        assert!(matches!(
            b.spend(-0.5),
            Err(BudgetError::NonPositive { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_total() {
        let _ = PrivacyBudget::new(0.0);
    }

    #[test]
    fn error_display() {
        let e = BudgetError::Exhausted {
            requested: 0.5,
            remaining: 0.1,
        };
        assert!(e.to_string().contains("exhausted"));
        let e = BudgetError::NonPositive { amount: -1.0 };
        assert!(e.to_string().contains("positive"));
    }
}
