//! The geometric mechanism and its double-geometric noise
//! distribution.

use rand::Rng;

/// The two-sided (double) geometric distribution with parameter
/// `alpha = e^(−ε/Δ)`:
///
/// `P(X = k) = (1 − α) / (1 + α) · α^|k|` for `k ∈ ℤ`.
///
/// This is Definition 3 of the paper with scale `Δ(q)/ε`. Sampling is
/// exact: `X = G₁ − G₂` where `G₁, G₂` are i.i.d. geometric on
/// `{0, 1, 2, …}` with success probability `1 − α`, which yields the
/// PMF above without any floating-point arithmetic on the *output*
/// value.
#[derive(Clone, Copy, Debug)]
pub struct DoubleGeometric {
    alpha: f64,
    /// `ln α`, precomputed at construction: the inversion sampler
    /// divides by it on **every** one-sided draw, and recomputing the
    /// transcendental per draw dominated slice-sized sampling (the
    /// `Hc` method draws `bound + 1` values per hierarchy node).
    ln_alpha: f64,
}

impl DoubleGeometric {
    /// Creates the distribution for a query with global sensitivity
    /// `sensitivity` released under privacy budget `epsilon`.
    ///
    /// Panics if `epsilon` or `sensitivity` is not strictly positive
    /// and finite — a zero or negative budget provides no privacy
    /// semantics and indicates a configuration bug. Also panics if
    /// `epsilon / sensitivity` is so small that `α = e^(−ε/Δ)` rounds
    /// to exactly 1.0 (below ≈1e-16): at α = 1 the PMF is improper
    /// (every integer equally likely), the inversion sampler divides
    /// by `ln 1 = 0`, and before this guard the resulting `-inf` was
    /// cast to a *negative* one-sided geometric draw — the two sides
    /// cancelled and the mechanism silently added **zero** noise at
    /// the tiniest (most privacy-demanding) budgets.
    pub fn new(epsilon: f64, sensitivity: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive and finite, got {epsilon}"
        );
        assert!(
            sensitivity.is_finite() && sensitivity > 0.0,
            "sensitivity must be positive and finite, got {sensitivity}"
        );
        let alpha = (-epsilon / sensitivity).exp();
        assert!(
            alpha < 1.0,
            "epsilon/sensitivity = {} is too small: alpha rounds to 1 and the \
             double-geometric becomes improper (draws would overflow i64)",
            epsilon / sensitivity
        );
        Self {
            alpha,
            ln_alpha: alpha.ln(),
        }
    }

    /// The distribution parameter `α = e^(−ε/Δ)`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Variance of the distribution: `2α / (1 − α)²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.alpha / ((1.0 - self.alpha) * (1.0 - self.alpha))
    }

    /// Draws one noise value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        self.sample_one_sided(rng) - self.sample_one_sided(rng)
    }

    /// Fills `out` with i.i.d. noise values, in exactly the order
    /// repeated [`DoubleGeometric::sample`] calls would draw them —
    /// slice-filling is a hot-loop convenience, never a different
    /// noise stream, so releases stay bit-identical whichever entry
    /// point the caller uses. All per-draw setup (the `ln α`
    /// transcendental) is hoisted to construction.
    pub fn fill<R: Rng + ?Sized>(&self, out: &mut [i64], rng: &mut R) {
        for slot in out {
            *slot = self.sample(rng);
        }
    }

    /// Geometric on {0, 1, 2, …} with `P(g) = (1 − α) α^g`, via
    /// inversion: `g = floor(ln U / ln α)`.
    ///
    /// The division by the precomputed `ln α` is kept a *division*
    /// (not a multiply by a reciprocal): `x / ln_alpha` is bit-exact
    /// with the historical per-draw `x / alpha.ln()`, while
    /// `x * (1.0 / ln_alpha)` rounds differently and would silently
    /// change every release.
    fn sample_one_sided<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        if self.alpha == 0.0 {
            return 0;
        }
        // U ∈ (0, 1]; `1 - gen::<f64>()` avoids ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        let g = (u.ln() / self.ln_alpha).floor();
        // Clamp the extreme tail to i64::MAX instead of casting raw: a
        // raw `as i64` of an out-of-range or non-finite quotient would
        // saturate to i64::MIN for the -inf/NaN artifacts of α ≈ 1,
        // turning an (always non-negative) geometric draw negative.
        // Both sides of [`Self::sample`] stay in [0, i64::MAX], so
        // their difference can never overflow.
        if g.is_finite() && g < i64::MAX as f64 {
            debug_assert!(g >= 0.0, "one-sided geometric draw must be non-negative");
            g.max(0.0) as i64
        } else {
            i64::MAX
        }
    }
}

/// The geometric mechanism: privatizes an integer-valued query by
/// adding i.i.d. [`DoubleGeometric`] noise to every coordinate.
#[derive(Clone, Copy, Debug)]
pub struct GeometricMechanism {
    dist: DoubleGeometric,
    epsilon: f64,
    sensitivity: f64,
}

impl GeometricMechanism {
    /// Mechanism for a vector query with L1 global sensitivity
    /// `sensitivity`, satisfying `epsilon`-differential privacy
    /// (Lemma 2).
    pub fn new(epsilon: f64, sensitivity: f64) -> Self {
        Self {
            dist: DoubleGeometric::new(epsilon, sensitivity),
            epsilon,
            sensitivity,
        }
    }

    /// The privacy budget consumed by one invocation.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The calibrated sensitivity.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The per-coordinate noise distribution.
    pub fn distribution(&self) -> DoubleGeometric {
        self.dist
    }

    /// Per-coordinate noise variance (used by the paper's Section 5.1
    /// variance estimates, approximated there as `2/ε₁²` per unit
    /// sensitivity).
    pub fn variance(&self) -> f64 {
        self.dist.variance()
    }

    /// Adds noise to one true count.
    pub fn privatize<R: Rng + ?Sized>(&self, value: u64, rng: &mut R) -> i64 {
        let v = i64::try_from(value).expect("count exceeds i64::MAX");
        v.saturating_add(self.dist.sample(rng))
    }

    /// Adds i.i.d. noise to every coordinate of a counts vector.
    pub fn privatize_vec<R: Rng + ?Sized>(&self, values: &[u64], rng: &mut R) -> Vec<i64> {
        values.iter().map(|&v| self.privatize(v, rng)).collect()
    }

    /// [`GeometricMechanism::privatize_vec`] into a caller-owned
    /// buffer (cleared first): same draws in the same order, but the
    /// hot loop reuses one allocation across nodes instead of
    /// allocating a `bound`-length vector per hierarchy node.
    pub fn privatize_into<R: Rng + ?Sized>(&self, values: &[u64], out: &mut Vec<i64>, rng: &mut R) {
        out.clear();
        out.reserve(values.len());
        for &v in values {
            out.push(self.privatize(v, rng));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        let _ = DoubleGeometric::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "sensitivity must be positive")]
    fn zero_sensitivity_rejected() {
        let _ = DoubleGeometric::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha rounds to 1")]
    fn epsilon_below_f64_resolution_is_rejected() {
        // Regression: ε/Δ below ~1e-16 makes α = e^(−ε/Δ) round to
        // exactly 1.0. The inversion sampler then divides by ln 1 = 0,
        // and the old raw cast turned the resulting -inf into
        // i64::MIN — a *negative* one-sided geometric — whose two
        // sides cancelled to zero net noise: the mechanism silently
        // released true counts at the strictest budgets. Such budgets
        // must be rejected at construction.
        let _ = DoubleGeometric::new(1e-300, 1.0);
    }

    #[test]
    fn tiny_epsilon_tail_is_clamped_not_overflowed() {
        // The smallest admissible budgets produce astronomically
        // heavy tails (mean one-sided draw ≈ Δ/ε). Every draw must
        // stay inside [−i64::MAX, i64::MAX] so downstream integer
        // arithmetic cannot overflow, while still being huge.
        let d = DoubleGeometric::new(1e-12, 1.0);
        assert!(d.alpha() < 1.0);
        let mut rng = StdRng::seed_from_u64(99);
        let mut saw_large = false;
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!(s >= -i64::MAX, "draw {s} escaped the clamp");
            saw_large |= s.unsigned_abs() > 1_000_000_000;
            // privatize() must saturate rather than wrap on top of
            // such draws.
            let m = GeometricMechanism::new(1e-12, 1.0);
            let _ = m.privatize(u64::try_from(i64::MAX).unwrap(), &mut rng);
        }
        assert!(saw_large, "tiny-epsilon tails should be enormous");
    }

    #[test]
    fn alpha_matches_definition() {
        let d = DoubleGeometric::new(1.0, 2.0);
        assert!((d.alpha() - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn empirical_mean_is_near_zero() {
        let d = DoubleGeometric::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let sum: i64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        // std of the mean ≈ sqrt(var/n) ≈ 0.0035 for ε=1.
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
    }

    #[test]
    fn empirical_variance_matches_formula() {
        for &(eps, sens) in &[(1.0, 1.0), (0.5, 1.0), (1.0, 2.0), (2.0, 1.0)] {
            let d = DoubleGeometric::new(eps, sens);
            let mut rng = StdRng::seed_from_u64(7);
            let n = 200_000;
            let mut sum = 0f64;
            let mut sumsq = 0f64;
            for _ in 0..n {
                let x = d.sample(&mut rng) as f64;
                sum += x;
                sumsq += x * x;
            }
            let mean = sum / n as f64;
            let var = sumsq / n as f64 - mean * mean;
            let expected = d.variance();
            assert!(
                (var - expected).abs() / expected < 0.05,
                "eps={eps} sens={sens}: var {var} vs expected {expected}"
            );
        }
    }

    #[test]
    fn pmf_ratio_respects_epsilon() {
        // Empirical check of the DP-defining likelihood ratio: the
        // frequency of k and k+1 should differ by at most e^(ε/Δ)
        // (up to sampling error), since P(k)/P(k+1) = e^(ε/Δ) for k ≥ 0.
        let d = DoubleGeometric::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(13);
        let n = 400_000;
        let mut freq = std::collections::HashMap::new();
        for _ in 0..n {
            *freq.entry(d.sample(&mut rng)).or_insert(0u64) += 1;
        }
        let f0 = freq[&0] as f64;
        let f1 = freq[&1] as f64;
        let ratio = f0 / f1;
        let e = 1f64.exp();
        assert!(
            (ratio - e).abs() < 0.25,
            "P(0)/P(1) = {ratio}, expected ≈ {e}"
        );
    }

    #[test]
    fn privatize_vec_adds_integer_noise() {
        let m = GeometricMechanism::new(0.5, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let out = m.privatize_vec(&[10, 0, 1_000_000], &mut rng);
        assert_eq!(out.len(), 3);
        // Noise is unbounded but astronomically unlikely to exceed 1e6
        // at this scale.
        assert!((out[0] - 10).abs() < 1000);
        assert!(out[2] > 900_000);
    }

    #[test]
    fn fill_matches_repeated_sample_bit_for_bit() {
        let d = DoubleGeometric::new(0.7, 1.0);
        let mut a = StdRng::seed_from_u64(21);
        let mut b = StdRng::seed_from_u64(21);
        let mut filled = vec![0i64; 4096];
        d.fill(&mut filled, &mut a);
        let singles: Vec<i64> = (0..4096).map(|_| d.sample(&mut b)).collect();
        assert_eq!(filled, singles, "fill must preserve the draw order");
    }

    #[test]
    fn privatize_into_matches_privatize_vec_and_reuses_buffer() {
        let m = GeometricMechanism::new(0.5, 1.0);
        let values: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let mut a = StdRng::seed_from_u64(22);
        let mut b = StdRng::seed_from_u64(22);
        let reference = m.privatize_vec(&values, &mut a);
        let mut out = vec![7i64; 5]; // stale shorter buffer must be replaced
        m.privatize_into(&values, &mut out, &mut b);
        assert_eq!(out, reference);
        // A second use with fewer values shrinks, not appends.
        m.privatize_into(&values[..10], &mut out, &mut b);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn mechanism_accessors() {
        let m = GeometricMechanism::new(0.25, 2.0);
        assert_eq!(m.epsilon(), 0.25);
        assert_eq!(m.sensitivity(), 2.0);
        assert!(m.variance() > 0.0);
        // Laplace approximation used by the paper: 2/(ε/Δ)² = 128; the
        // exact double-geometric variance is slightly smaller.
        let laplace_approx = 2.0 / (0.25f64 / 2.0).powi(2);
        assert!(m.variance() < laplace_approx);
        assert!(m.variance() > 0.5 * laplace_approx);
    }
}
