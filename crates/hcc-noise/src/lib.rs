//! Differential-privacy primitives (Section 3.2 of the paper).
//!
//! * [`GeometricMechanism`] — the geometric mechanism of Ghosh,
//!   Roughgarden & Sundararajan: adds integer *double-geometric*
//!   noise with scale `Δ(q)/ε`. Preferred by the paper because the
//!   output is integral, the variance is lower than Laplace, and it is
//!   immune to the floating-point side channel of naive Laplace
//!   implementations (Mironov 2012).
//! * [`LaplaceMechanism`] — continuous Laplace noise; used only by the
//!   omniscient yardstick baseline and the public-`K` estimation
//!   helper, never for released values.
//! * [`PrivacyBudget`] — explicit bookkeeping of sequential /
//!   per-level budget splits so that Algorithm 1's
//!   `ε_ℓ = ε / (L + 1)` allocation is auditable in one place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod gaussian;
pub mod geometric;
pub mod laplace;

pub use budget::{BudgetError, PrivacyBudget};
pub use gaussian::{DiscreteGaussian, GaussianMechanism, ZCdpBudget};
pub use geometric::{DoubleGeometric, GeometricMechanism};
pub use laplace::LaplaceMechanism;
