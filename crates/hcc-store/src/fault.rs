//! Deterministic fault injection for the store's crash-recovery
//! tests.
//!
//! A [`FailPolicy`] can schedule one I/O fault (fail outright, tear
//! the write in half, or cut its tail) at the Nth counted I/O
//! operation, and can arm any number of named *crash points* — the
//! hooks the store passes through at every durability-relevant moment
//! (after a WAL record is buffered, after it is synced, between the
//! checkpoint's temp-write / rename / truncate steps, …). Hitting
//! either wedges the store: every later mutation fails, exactly as if
//! the process had been `kill -9`ed at that instant, and the test
//! reopens the files to exercise recovery. Nothing here draws on
//! ambient state (no clocks, no entropy), so a given policy replays
//! the same fault at the same byte every run.

/// How a scheduled I/O fault corrupts the operation it fires on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails before writing anything.
    Fail,
    /// A torn write: the first half of the buffer reaches the file,
    /// the rest never does.
    Torn,
    /// A short write: all but the final few bytes reach the file.
    Short,
}

/// Deterministic fault schedule consulted by every store I/O
/// operation and crash-point hook. The default policy injects
/// nothing.
#[derive(Debug, Default)]
pub struct FailPolicy {
    /// Inject `kind` on the I/O operation with this 0-based index.
    fault_at: Option<(u64, FaultKind)>,
    /// Named crash points armed to wedge the store when reached.
    crash_points: Vec<String>,
    /// I/O operations counted so far.
    ops: u64,
}

impl FailPolicy {
    /// A policy that injects nothing.
    pub fn new() -> FailPolicy {
        FailPolicy::default()
    }

    /// Schedules `kind` for the `op`-th (0-based) counted I/O
    /// operation. Only one I/O fault may be scheduled; the last call
    /// wins.
    pub fn with_fault_at(mut self, op: u64, kind: FaultKind) -> FailPolicy {
        self.fault_at = Some((op, kind));
        self
    }

    /// Arms the named crash point (builder form of [`arm_crash`]).
    ///
    /// [`arm_crash`]: FailPolicy::arm_crash
    pub fn with_crash_point(mut self, point: &str) -> FailPolicy {
        self.arm_crash(point);
        self
    }

    /// Arms a named crash point: the store wedges (as if `kill -9`ed)
    /// the next time it passes through it. Point names are listed in
    /// `docs/store.md`; e.g. `written.put` fires after a PREPARE's WAL
    /// record is buffered but before it is synced, and
    /// `checkpoint.rename` fires between the checkpoint's atomic
    /// rename and the WAL truncate.
    pub fn arm_crash(&mut self, point: &str) {
        self.crash_points.push(point.to_string());
    }

    /// How many I/O operations this policy has counted.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Counts one I/O operation, returning the fault to inject on it,
    /// if any.
    pub(crate) fn check_op(&mut self) -> Option<FaultKind> {
        let op = self.ops;
        self.ops += 1;
        match self.fault_at {
            Some((at, kind)) if at == op => Some(kind),
            _ => None,
        }
    }

    /// Whether the named crash point is armed. The point stays armed:
    /// a wedged store fails every later mutation anyway.
    pub(crate) fn check_point(&self, point: &str) -> bool {
        self.crash_points.iter().any(|p| p == point)
    }
}
