//! Durable single-file dataset store and WAL'd privacy-budget ledger.
//!
//! Everything the serving tier must not forget across a crash lives
//! here: which datasets were PREPAREd (hierarchy names/parents plus
//! run-length-encoded per-node count-of-counts histograms, keyed by
//! their content digest) and — far more importantly — how much
//! privacy budget each dataset has already spent. The engine records
//! a release's epsilon *before* any noise is drawn (charge-then-
//! release), so a crash mid-release over-counts spent budget but can
//! never under-count it.
//!
//! # On-disk layout
//!
//! Two files, both little-endian, both digest-guarded (FNV-1a 64):
//!
//! - **`path.hcc`** — the page-based snapshot. Page 0 is the header
//!   (magic, version, page size, page count, the LSN the snapshot
//!   covers, payload length + digest, header digest); every following
//!   [`PAGE_SIZE`]-byte page carries a framed, digested chunk of the
//!   serialized state. The file is only ever replaced whole: a
//!   checkpoint writes `path.hcc.tmp`, fsyncs it, and atomically
//!   renames it over the snapshot.
//! - **`path.hcc.wal`** — the write-ahead log. Every mutation
//!   (dataset put, refcount change, budget charge) is appended as one
//!   self-framed record (magic, LSN, type, length, payload, digest)
//!   and fsynced *before* the mutation is acknowledged. On open the
//!   WAL is replayed into the snapshot state; records whose LSN the
//!   snapshot already covers are skipped, so replay is idempotent,
//!   and a torn tail (from a crash mid-append) is detected by the
//!   record digest and truncated away.
//!
//! The full format, the checkpoint/recovery protocol, and the budget
//! ledger's invariants are specified in `docs/store.md`.
//!
//! # Concurrency
//!
//! [`Store`] is deliberately unsynchronized (`&mut self` mutations):
//! the engine wraps it in its rank-checked mutex (`store` rank in the
//! declared lock order) so the lock-order lint sees every access.
//!
//! # Crash testing
//!
//! [`FailPolicy`] injects deterministic faults — fail/torn/short
//! writes at the Nth I/O operation, or a wedge at a named crash point
//! — so recovery tests can kill the store at every durability-
//! relevant instant and prove reopening restores a consistent state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod fault;

pub use fault::{FailPolicy, FaultKind};

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use codec::{fnv64, put_bytes, put_u128, put_u32, put_u64, Reader};

/// Size of every page in the snapshot file, header page included.
pub const PAGE_SIZE: usize = 4096;
/// Snapshot file magic (bytes 0..8 of page 0).
const MAGIC: [u8; 8] = *b"HCCSTORE";
/// Snapshot format version.
const VERSION: u32 = 1;
/// Magic opening every data page.
const PAGE_MAGIC: u32 = 0x5043_4348;
/// Magic opening every WAL record.
const WAL_MAGIC: u32 = 0x4C41_5748;
/// Bytes of page 0 covered by the header digest.
const HEADER_BODY: usize = 48;
/// Bytes of framing at the start of every data page.
const PAGE_HEADER: usize = 20;
/// Payload bytes per data page.
const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HEADER;

/// WAL record: a dataset was put (PREPARE/DERIVE/APPEND).
const REC_PUT: u8 = 1;
/// WAL record: a dataset's refcount changed (0 drops it).
const REC_REFS: u8 = 2;
/// WAL record: epsilon was charged against a dataset's budget.
const REC_CHARGE: u8 = 3;

/// WAL size past which a mutation triggers an automatic checkpoint.
const DEFAULT_CHECKPOINT_BYTES: u64 = 1 << 20;

/// A prepared dataset as persisted: enough to rebuild the hierarchy
/// and the per-node true histograms byte-identically, keyed by the
/// dataset's content digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetRecord {
    /// The dataset's content digest (the engine's
    /// `dataset_fingerprint`), doubling as the storage key and the
    /// reload integrity check.
    pub handle: u128,
    /// Node names in node-id order (index 0 is the root).
    pub names: Vec<String>,
    /// Parent index per node; `u64::MAX` marks the root. Parents
    /// always precede children.
    pub parents: Vec<u64>,
    /// Per-node count-of-counts histogram, run-length encoded as
    /// `(group size, group count)` pairs with zero-count sizes
    /// omitted, in ascending size order.
    pub histograms: Vec<Vec<(u64, u64)>>,
    /// Registry reference count at last persist.
    pub refs: u64,
}

/// Everything that can go wrong opening or mutating a [`Store`].
#[derive(Debug)]
pub enum StoreError {
    /// An underlying file operation failed.
    Io(io::Error),
    /// The snapshot or WAL failed an integrity check.
    Corrupt(String),
    /// The snapshot was written by an unsupported format version.
    BadVersion(u32),
    /// A [`FailPolicy`] fault or crash point fired (the name says
    /// which); the store is now wedged.
    Injected(String),
    /// A mutation was attempted after a previous fault wedged the
    /// store; reopen the files to recover.
    Wedged,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            StoreError::BadVersion(v) => write!(f, "unsupported store version {v}"),
            StoreError::Injected(point) => write!(f, "injected fault at {point}"),
            StoreError::Wedged => write!(f, "store wedged by an earlier fault"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// The durable store: an in-memory mirror of the snapshot + WAL,
/// with every mutation WAL-appended and fsynced before it is
/// acknowledged.
pub struct Store {
    path: PathBuf,
    wal_path: PathBuf,
    wal: File,
    wal_len: u64,
    datasets: BTreeMap<u128, DatasetRecord>,
    /// Cumulative epsilon charged per dataset handle. Entries are
    /// never removed — budget is spent against the *data*, so it
    /// survives UNPREPARE and re-PREPARE of the same content.
    ledger: BTreeMap<u128, f64>,
    /// The LSN the on-disk snapshot covers; replay skips records at
    /// or below it.
    applied_lsn: u64,
    /// LSN the next WAL record will carry.
    next_lsn: u64,
    policy: FailPolicy,
    wedged: bool,
    checkpoint_bytes: u64,
}

impl Store {
    /// Opens (or creates) the store at `path`, replaying any WAL tail
    /// into the snapshot state.
    pub fn open(path: impl AsRef<Path>) -> Result<Store, StoreError> {
        Store::open_with(path, FailPolicy::new())
    }

    /// [`Store::open`] with a fault-injection policy (tests only; the
    /// default policy injects nothing).
    pub fn open_with(path: impl AsRef<Path>, policy: FailPolicy) -> Result<Store, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut wal_os = path.clone().into_os_string();
        wal_os.push(".wal");
        let wal_path = PathBuf::from(wal_os);

        let (datasets, ledger, applied_lsn) = read_snapshot(&path)?.unwrap_or_default();
        let mut store = Store {
            path,
            wal_path: wal_path.clone(),
            // Never truncate here: the WAL's existing tail IS the
            // state recovery is about to replay.
            wal: OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&wal_path)?,
            wal_len: 0,
            datasets,
            ledger,
            applied_lsn,
            next_lsn: applied_lsn + 1,
            policy,
            wedged: false,
            checkpoint_bytes: DEFAULT_CHECKPOINT_BYTES,
        };
        store.replay_wal()?;
        Ok(store)
    }

    /// Replays every intact WAL record past the snapshot's LSN, then
    /// truncates any torn tail so later appends start clean.
    fn replay_wal(&mut self) -> Result<(), StoreError> {
        let buf = fs::read(&self.wal_path)?;
        let mut off = 0usize;
        let mut max_lsn = self.applied_lsn;
        while let Some((lsn, rtype, payload, used)) = decode_record(buf.get(off..).unwrap_or(&[])) {
            if lsn > self.applied_lsn {
                self.apply_record(rtype, payload)?;
                max_lsn = max_lsn.max(lsn);
            }
            off += used;
        }
        let valid = u64::try_from(off).unwrap_or(0);
        if valid < u64::try_from(buf.len()).unwrap_or(0) {
            // Torn tail from a crash mid-append: the record was never
            // acknowledged, so dropping it is correct.
            self.wal.set_len(valid)?;
            self.wal.sync_all()?;
        }
        self.wal.seek(SeekFrom::Start(valid))?;
        self.wal_len = valid;
        self.next_lsn = max_lsn + 1;
        Ok(())
    }

    /// Applies one decoded WAL record to the in-memory state.
    fn apply_record(&mut self, rtype: u8, payload: &[u8]) -> Result<(), StoreError> {
        let mut r = Reader::new(payload);
        match rtype {
            REC_PUT => {
                let rec = decode_dataset(&mut r).map_err(StoreError::Corrupt)?;
                self.datasets.insert(rec.handle, rec);
            }
            REC_REFS => {
                let handle = r.u128("refs.handle").map_err(StoreError::Corrupt)?;
                let refs = r.u64("refs.count").map_err(StoreError::Corrupt)?;
                if refs == 0 {
                    self.datasets.remove(&handle);
                } else if let Some(rec) = self.datasets.get_mut(&handle) {
                    rec.refs = refs;
                }
            }
            REC_CHARGE => {
                let handle = r.u128("charge.handle").map_err(StoreError::Corrupt)?;
                let bits = r.u64("charge.epsilon").map_err(StoreError::Corrupt)?;
                let spent = self.ledger.entry(handle).or_insert(0.0);
                *spent += f64::from_bits(bits);
            }
            other => {
                return Err(StoreError::Corrupt(format!(
                    "unknown WAL record type {other}"
                )));
            }
        }
        Ok(())
    }

    /// Persists a prepared dataset (PREPARE/DERIVE/APPEND),
    /// durably, before the caller acknowledges the handle. Re-putting
    /// an existing handle overwrites it (records are content-
    /// addressed, so the bytes are identical anyway).
    pub fn put_dataset(&mut self, rec: &DatasetRecord) -> Result<(), StoreError> {
        let mut payload = Vec::new();
        encode_dataset(&mut payload, rec);
        self.append_record(REC_PUT, &payload, "put")?;
        self.datasets.insert(rec.handle, rec.clone());
        self.maybe_checkpoint()
    }

    /// Persists a dataset's new reference count; zero drops the
    /// dataset record. Its ledger entry survives either way.
    pub fn set_refs(&mut self, handle: u128, refs: u64) -> Result<(), StoreError> {
        let mut payload = Vec::new();
        put_u128(&mut payload, handle);
        put_u64(&mut payload, refs);
        self.append_record(REC_REFS, &payload, "refs")?;
        if refs == 0 {
            self.datasets.remove(&handle);
        } else if let Some(rec) = self.datasets.get_mut(&handle) {
            rec.refs = refs;
        }
        self.maybe_checkpoint()
    }

    /// Durably records `epsilon` as spent against `handle`, returning
    /// the new cumulative total. Callers must invoke this *before*
    /// drawing any noise (charge-then-release): a crash after the
    /// charge but before the release over-counts spent budget, which
    /// is the safe direction. The store does not enforce any cap —
    /// that is the engine's admission decision.
    pub fn charge(&mut self, handle: u128, epsilon: f64) -> Result<f64, StoreError> {
        let mut payload = Vec::new();
        put_u128(&mut payload, handle);
        put_u64(&mut payload, epsilon.to_bits());
        self.append_record(REC_CHARGE, &payload, "charge")?;
        let spent = self.ledger.entry(handle).or_insert(0.0);
        *spent += epsilon;
        let total = *spent;
        self.maybe_checkpoint()?;
        Ok(total)
    }

    /// Cumulative epsilon charged against `handle` (0 if never
    /// charged).
    pub fn spent(&self, handle: u128) -> f64 {
        self.ledger.get(&handle).copied().unwrap_or(0.0)
    }

    /// The persisted datasets, keyed by content digest.
    pub fn datasets(&self) -> &BTreeMap<u128, DatasetRecord> {
        &self.datasets
    }

    /// The budget ledger: cumulative epsilon per dataset handle.
    pub fn ledger(&self) -> &BTreeMap<u128, f64> {
        &self.ledger
    }

    /// Total epsilon charged across every dataset.
    pub fn total_spent(&self) -> f64 {
        self.ledger.values().sum()
    }

    /// Bytes currently in the WAL (0 right after a checkpoint).
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// The LSN the on-disk snapshot covers.
    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn
    }

    /// The snapshot file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fault-injection policy (tests arm crash points through
    /// this).
    pub fn policy_mut(&mut self) -> &mut FailPolicy {
        &mut self.policy
    }

    /// Sets the WAL size past which mutations auto-checkpoint.
    pub fn set_checkpoint_bytes(&mut self, bytes: u64) {
        self.checkpoint_bytes = bytes;
    }

    /// Appends one WAL record and fsyncs it; only then is the
    /// mutation it describes allowed to be acknowledged. Crash points
    /// fire before the write (`append.<kind>`), after the bytes are
    /// written but before the sync (`written.<kind>`), and after the
    /// sync but before the in-memory apply (`synced.<kind>`).
    fn append_record(&mut self, rtype: u8, payload: &[u8], kind: &str) -> Result<(), StoreError> {
        if self.wedged {
            return Err(StoreError::Wedged);
        }
        let rec = encode_record(self.next_lsn, rtype, payload);
        self.crash_point(&format!("append.{kind}"))?;
        self.guarded(|store| guarded_write(&mut store.wal, &mut store.policy, &rec))?;
        self.crash_point(&format!("written.{kind}"))?;
        self.guarded(|store| guarded_sync(&store.wal, &mut store.policy))?;
        self.crash_point(&format!("synced.{kind}"))?;
        self.next_lsn += 1;
        self.wal_len += u64::try_from(rec.len()).unwrap_or(0);
        Ok(())
    }

    /// Checkpoints if the WAL has outgrown the configured threshold.
    fn maybe_checkpoint(&mut self) -> Result<(), StoreError> {
        if self.wal_len >= self.checkpoint_bytes {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Folds the WAL into the snapshot: serializes the full state to
    /// `path.hcc.tmp`, fsyncs it, atomically renames it over the
    /// snapshot, then truncates the WAL. A crash at any step leaves a
    /// recoverable pair of files — in particular, a crash between the
    /// rename and the truncate leaves WAL records the new snapshot
    /// already covers, which replay skips by LSN.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        if self.wedged {
            return Err(StoreError::Wedged);
        }
        let covered = self.next_lsn - 1;
        let mut payload = Vec::new();
        encode_snapshot(&mut payload, &self.datasets, &self.ledger);
        let image = build_file_image(&payload, covered);
        let tmp = {
            let mut os = self.path.clone().into_os_string();
            os.push(".tmp");
            PathBuf::from(os)
        };
        self.crash_point("checkpoint.begin")?;
        self.guarded(|store| {
            let mut f = File::create(&tmp)?;
            guarded_write(&mut f, &mut store.policy, &image)?;
            guarded_sync(&f, &mut store.policy)
        })?;
        self.crash_point("checkpoint.tmp")?;
        self.guarded(|store| fs::rename(&tmp, &store.path).map_err(StoreError::Io))?;
        // Make the rename itself durable. Directory fsync is
        // best-effort: some filesystems refuse to open directories.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        self.crash_point("checkpoint.rename")?;
        self.guarded(|store| {
            store.wal.set_len(0)?;
            store.wal.seek(SeekFrom::Start(0))?;
            guarded_sync(&store.wal, &mut store.policy)
        })?;
        self.crash_point("checkpoint.done")?;
        self.applied_lsn = covered;
        self.wal_len = 0;
        Ok(())
    }

    /// Runs `op`, wedging the store if it fails.
    fn guarded<T>(
        &mut self,
        op: impl FnOnce(&mut Store) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let result = op(self);
        if result.is_err() {
            self.wedged = true;
        }
        result
    }

    /// Wedges and errors if the named crash point is armed.
    fn crash_point(&mut self, point: &str) -> Result<(), StoreError> {
        if self.policy.check_point(point) {
            self.wedged = true;
            return Err(StoreError::Injected(point.to_string()));
        }
        Ok(())
    }
}

/// One counted, fault-injectable write.
fn guarded_write(file: &mut File, policy: &mut FailPolicy, buf: &[u8]) -> Result<(), StoreError> {
    match policy.check_op() {
        None => file.write_all(buf).map_err(StoreError::Io),
        Some(FaultKind::Fail) => Err(StoreError::Injected("io.fail".to_string())),
        Some(FaultKind::Torn) => {
            let half = buf.len() / 2;
            let _ = file.write_all(buf.get(..half).unwrap_or(&[]));
            let _ = file.sync_all();
            Err(StoreError::Injected("io.torn".to_string()))
        }
        Some(FaultKind::Short) => {
            let keep = buf.len().saturating_sub(3);
            let _ = file.write_all(buf.get(..keep).unwrap_or(&[]));
            let _ = file.sync_all();
            Err(StoreError::Injected("io.short".to_string()))
        }
    }
}

/// One counted, fault-injectable fsync.
fn guarded_sync(file: &File, policy: &mut FailPolicy) -> Result<(), StoreError> {
    match policy.check_op() {
        None => file.sync_all().map_err(StoreError::Io),
        Some(_) => Err(StoreError::Injected("io.sync".to_string())),
    }
}

/// Frames one WAL record: magic, LSN, type, length, payload, digest
/// (FNV-1a 64 over LSN..payload).
fn encode_record(lsn: u64, rtype: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(25 + payload.len());
    put_u32(&mut out, WAL_MAGIC);
    put_u64(&mut out, lsn);
    out.push(rtype);
    put_bytes(&mut out, payload);
    let digest = fnv64(out.get(4..).unwrap_or(&[]));
    put_u64(&mut out, digest);
    out
}

/// Decodes the WAL record at the head of `buf`. `None` means the
/// bytes do not form one intact record (truncated, torn, or
/// bit-flipped) — callers treat that as the log's logical end.
fn decode_record(buf: &[u8]) -> Option<(u64, u8, &[u8], usize)> {
    let mut r = Reader::new(buf);
    if r.u32("magic").ok()? != WAL_MAGIC {
        return None;
    }
    let lsn = r.u64("lsn").ok()?;
    let rtype = r.u8("type").ok()?;
    let payload = r.bytes("payload").ok()?;
    let body_end = r.consumed();
    let digest = r.u64("digest").ok()?;
    let body = buf.get(4..body_end)?;
    if fnv64(body) != digest {
        return None;
    }
    Some((lsn, rtype, payload, r.consumed()))
}

/// Serializes one dataset record (shared by `REC_PUT` payloads and
/// the snapshot).
fn encode_dataset(out: &mut Vec<u8>, rec: &DatasetRecord) {
    put_u128(out, rec.handle);
    put_u64(out, rec.refs);
    put_u64(out, u64::try_from(rec.names.len()).unwrap_or(0));
    for (i, name) in rec.names.iter().enumerate() {
        put_bytes(out, name.as_bytes());
        let parent = rec.parents.get(i).copied().unwrap_or(u64::MAX);
        put_u64(out, parent);
        let pairs: &[(u64, u64)] = rec.histograms.get(i).map(Vec::as_slice).unwrap_or(&[]);
        put_u64(out, u64::try_from(pairs.len()).unwrap_or(0));
        for &(size, count) in pairs {
            put_u64(out, size);
            put_u64(out, count);
        }
    }
}

/// Inverse of [`encode_dataset`].
fn decode_dataset(r: &mut Reader<'_>) -> Result<DatasetRecord, String> {
    let handle = r.u128("dataset.handle")?;
    let refs = r.u64("dataset.refs")?;
    let num_nodes = r.u64("dataset.num_nodes")?;
    let num_nodes = usize::try_from(num_nodes).map_err(|_| "dataset.num_nodes overflows")?;
    let mut names = Vec::new();
    let mut parents = Vec::new();
    let mut histograms = Vec::new();
    for _ in 0..num_nodes {
        names.push(r.string("node.name")?);
        parents.push(r.u64("node.parent")?);
        let pair_count = r.u64("node.pairs")?;
        let pair_count = usize::try_from(pair_count).map_err(|_| "node.pairs overflows")?;
        let mut pairs = Vec::new();
        for _ in 0..pair_count {
            let size = r.u64("pair.size")?;
            let count = r.u64("pair.count")?;
            pairs.push((size, count));
        }
        histograms.push(pairs);
    }
    Ok(DatasetRecord {
        handle,
        names,
        parents,
        histograms,
        refs,
    })
}

/// Serializes the whole store state (datasets + ledger) as one
/// snapshot payload.
fn encode_snapshot(
    out: &mut Vec<u8>,
    datasets: &BTreeMap<u128, DatasetRecord>,
    ledger: &BTreeMap<u128, f64>,
) {
    put_u64(out, u64::try_from(datasets.len()).unwrap_or(0));
    for rec in datasets.values() {
        encode_dataset(out, rec);
    }
    put_u64(out, u64::try_from(ledger.len()).unwrap_or(0));
    for (&handle, &spent) in ledger {
        put_u128(out, handle);
        put_u64(out, spent.to_bits());
    }
}

/// Inverse of [`encode_snapshot`].
#[allow(clippy::type_complexity)]
fn decode_snapshot(
    payload: &[u8],
) -> Result<(BTreeMap<u128, DatasetRecord>, BTreeMap<u128, f64>), String> {
    let mut r = Reader::new(payload);
    let num_datasets = r.u64("snapshot.num_datasets")?;
    let mut datasets = BTreeMap::new();
    for _ in 0..num_datasets {
        let rec = decode_dataset(&mut r)?;
        datasets.insert(rec.handle, rec);
    }
    let num_entries = r.u64("snapshot.num_ledger")?;
    let mut ledger = BTreeMap::new();
    for _ in 0..num_entries {
        let handle = r.u128("ledger.handle")?;
        let bits = r.u64("ledger.epsilon")?;
        ledger.insert(handle, f64::from_bits(bits));
    }
    if r.remaining() != 0 {
        return Err(format!("snapshot has {} trailing bytes", r.remaining()));
    }
    Ok((datasets, ledger))
}

/// Lays the snapshot payload out as a header page plus framed,
/// digested data pages.
fn build_file_image(payload: &[u8], applied_lsn: u64) -> Vec<u8> {
    let num_pages = payload.len().div_ceil(PAGE_PAYLOAD);
    let mut image = Vec::with_capacity((num_pages + 1) * PAGE_SIZE);
    let mut header = Vec::with_capacity(PAGE_SIZE);
    header.extend_from_slice(&MAGIC);
    put_u32(&mut header, VERSION);
    put_u32(&mut header, u32::try_from(PAGE_SIZE).unwrap_or(0));
    put_u64(&mut header, u64::try_from(num_pages).unwrap_or(0));
    put_u64(&mut header, applied_lsn);
    put_u64(&mut header, u64::try_from(payload.len()).unwrap_or(0));
    put_u64(&mut header, fnv64(payload));
    let header_digest = fnv64(&header);
    put_u64(&mut header, header_digest);
    header.resize(PAGE_SIZE, 0);
    image.extend_from_slice(&header);
    for (idx, chunk) in payload.chunks(PAGE_PAYLOAD).enumerate() {
        let mut page = Vec::with_capacity(PAGE_SIZE);
        put_u32(&mut page, PAGE_MAGIC);
        put_u32(&mut page, u32::try_from(idx).unwrap_or(u32::MAX));
        put_u32(&mut page, u32::try_from(chunk.len()).unwrap_or(0));
        put_u64(&mut page, fnv64(chunk));
        page.extend_from_slice(chunk);
        page.resize(PAGE_SIZE, 0);
        image.extend_from_slice(&page);
    }
    image
}

/// Reads and verifies the snapshot file. `Ok(None)` means no snapshot
/// exists yet (first boot); corruption is an error, never silently
/// ignored.
#[allow(clippy::type_complexity)]
fn read_snapshot(
    path: &Path,
) -> Result<Option<(BTreeMap<u128, DatasetRecord>, BTreeMap<u128, f64>, u64)>, StoreError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::Io(e)),
    };
    if bytes.is_empty() {
        return Ok(None);
    }
    let header = bytes
        .get(..PAGE_SIZE)
        .ok_or_else(|| StoreError::Corrupt("snapshot shorter than one page".to_string()))?;
    let mut r = Reader::new(header);
    let magic = r.take(8, "header.magic").map_err(StoreError::Corrupt)?;
    if magic != MAGIC {
        return Err(StoreError::Corrupt("bad snapshot magic".to_string()));
    }
    let version = r.u32("header.version").map_err(StoreError::Corrupt)?;
    if version != VERSION {
        return Err(StoreError::BadVersion(version));
    }
    let page_size = r.u32("header.page_size").map_err(StoreError::Corrupt)?;
    if usize::try_from(page_size) != Ok(PAGE_SIZE) {
        return Err(StoreError::Corrupt(format!(
            "unsupported page size {page_size}"
        )));
    }
    let num_pages = r.u64("header.num_pages").map_err(StoreError::Corrupt)?;
    let applied_lsn = r.u64("header.applied_lsn").map_err(StoreError::Corrupt)?;
    let payload_len = r.u64("header.payload_len").map_err(StoreError::Corrupt)?;
    let payload_digest = r
        .u64("header.payload_digest")
        .map_err(StoreError::Corrupt)?;
    let header_digest = r.u64("header.digest").map_err(StoreError::Corrupt)?;
    let body = header
        .get(..HEADER_BODY)
        .ok_or_else(|| StoreError::Corrupt("header body missing".to_string()))?;
    if fnv64(body) != header_digest {
        return Err(StoreError::Corrupt("header digest mismatch".to_string()));
    }
    let num_pages = usize::try_from(num_pages)
        .map_err(|_| StoreError::Corrupt("page count overflows".to_string()))?;
    let mut payload = Vec::new();
    for idx in 0..num_pages {
        let start = (idx + 1) * PAGE_SIZE;
        let page = bytes
            .get(start..start + PAGE_SIZE)
            .ok_or_else(|| StoreError::Corrupt(format!("page {idx} missing")))?;
        let mut pr = Reader::new(page);
        if pr.u32("page.magic").map_err(StoreError::Corrupt)? != PAGE_MAGIC {
            return Err(StoreError::Corrupt(format!("page {idx}: bad magic")));
        }
        let stored_idx = pr.u32("page.index").map_err(StoreError::Corrupt)?;
        if usize::try_from(stored_idx) != Ok(idx) {
            return Err(StoreError::Corrupt(format!(
                "page {idx}: out-of-place index {stored_idx}"
            )));
        }
        let len = pr.u32("page.len").map_err(StoreError::Corrupt)?;
        let len = usize::try_from(len)
            .map_err(|_| StoreError::Corrupt(format!("page {idx}: length overflows")))?;
        if len > PAGE_PAYLOAD {
            return Err(StoreError::Corrupt(format!(
                "page {idx}: payload {len} exceeds page capacity"
            )));
        }
        let digest = pr.u64("page.digest").map_err(StoreError::Corrupt)?;
        let chunk = pr.take(len, "page.payload").map_err(StoreError::Corrupt)?;
        if fnv64(chunk) != digest {
            return Err(StoreError::Corrupt(format!("page {idx}: digest mismatch")));
        }
        payload.extend_from_slice(chunk);
    }
    if u64::try_from(payload.len()) != Ok(payload_len) {
        return Err(StoreError::Corrupt(format!(
            "payload length {} != header's {payload_len}",
            payload.len()
        )));
    }
    if fnv64(&payload) != payload_digest {
        return Err(StoreError::Corrupt("payload digest mismatch".to_string()));
    }
    let (datasets, ledger) = decode_snapshot(&payload).map_err(StoreError::Corrupt)?;
    Ok(Some((datasets, ledger, applied_lsn)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hcc-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(handle: u128) -> DatasetRecord {
        DatasetRecord {
            handle,
            names: vec!["root".into(), "a".into(), "b".into()],
            parents: vec![u64::MAX, 0, 0],
            histograms: vec![vec![(1, 5), (3, 2)], vec![(1, 5)], vec![(3, 2)]],
            refs: 1,
        }
    }

    #[test]
    fn mutations_survive_reopen() {
        let dir = tmpdir("reopen");
        let path = dir.join("s.hcc");
        {
            let mut store = Store::open(&path).unwrap();
            store.put_dataset(&sample(42)).unwrap();
            assert_eq!(store.charge(42, 0.5).unwrap(), 0.5);
            assert_eq!(store.charge(42, 0.25).unwrap(), 0.75);
        }
        let store = Store::open(&path).unwrap();
        assert_eq!(store.datasets().len(), 1);
        assert_eq!(store.datasets().get(&42).unwrap(), &sample(42));
        assert_eq!(store.spent(42), 0.75);
    }

    #[test]
    fn checkpoint_then_reopen_is_identical_and_wal_is_empty() {
        let dir = tmpdir("checkpoint");
        let path = dir.join("s.hcc");
        {
            let mut store = Store::open(&path).unwrap();
            store.put_dataset(&sample(1)).unwrap();
            store.put_dataset(&sample(2)).unwrap();
            store.charge(1, 1.5).unwrap();
            store.checkpoint().unwrap();
            assert_eq!(store.wal_len(), 0);
        }
        let store = Store::open(&path).unwrap();
        assert_eq!(store.datasets().len(), 2);
        assert_eq!(store.spent(1), 1.5);
        assert_eq!(store.wal_len(), 0);
    }

    #[test]
    fn unprepare_drops_dataset_but_keeps_ledger() {
        let dir = tmpdir("refs");
        let path = dir.join("s.hcc");
        {
            let mut store = Store::open(&path).unwrap();
            store.put_dataset(&sample(9)).unwrap();
            store.charge(9, 2.0).unwrap();
            store.set_refs(9, 0).unwrap();
        }
        let store = Store::open(&path).unwrap();
        assert!(store.datasets().is_empty());
        assert_eq!(store.spent(9), 2.0, "budget survives unprepare");
    }

    #[test]
    fn torn_wal_tail_is_dropped_on_reopen() {
        let dir = tmpdir("torn");
        let path = dir.join("s.hcc");
        {
            let mut store = Store::open(&path).unwrap();
            store.put_dataset(&sample(7)).unwrap();
            store.charge(7, 1.0).unwrap();
            // Tear the next charge's record in half mid-write. The
            // charge was never acknowledged, so losing it is correct.
            *store.policy_mut() = FailPolicy::new().with_fault_at(0, FaultKind::Torn);
            assert!(matches!(store.charge(7, 5.0), Err(StoreError::Injected(_))));
            // The wedged store refuses everything after the fault.
            assert!(matches!(store.charge(7, 0.1), Err(StoreError::Wedged)));
        }
        let store = Store::open(&path).unwrap();
        assert_eq!(store.spent(7), 1.0);
        assert_eq!(store.datasets().len(), 1);
    }

    #[test]
    fn short_write_recovers_identically() {
        let dir = tmpdir("short");
        let path = dir.join("s.hcc");
        {
            let mut store = Store::open(&path).unwrap();
            store.put_dataset(&sample(3)).unwrap();
            *store.policy_mut() = FailPolicy::new().with_fault_at(0, FaultKind::Short);
            assert!(store.put_dataset(&sample(4)).is_err());
        }
        let store = Store::open(&path).unwrap();
        assert_eq!(store.datasets().len(), 1);
        assert!(store.datasets().contains_key(&3));
    }

    #[test]
    fn crash_between_rename_and_truncate_replays_idempotently() {
        let dir = tmpdir("rename");
        let path = dir.join("s.hcc");
        {
            let mut store = Store::open(&path).unwrap();
            store.put_dataset(&sample(5)).unwrap();
            store.charge(5, 0.5).unwrap();
            store.policy_mut().arm_crash("checkpoint.rename");
            assert!(matches!(store.checkpoint(), Err(StoreError::Injected(_))));
        }
        // Snapshot now covers the WAL's records, and the WAL still
        // holds them: replay must skip them (idempotent by LSN).
        let store = Store::open(&path).unwrap();
        assert_eq!(store.spent(5), 0.5, "charge applied exactly once");
        assert_eq!(store.datasets().len(), 1);
    }

    #[test]
    fn crash_before_sync_never_loses_acknowledged_state() {
        let dir = tmpdir("presync");
        let path = dir.join("s.hcc");
        {
            let mut store = Store::open(&path).unwrap();
            store.put_dataset(&sample(6)).unwrap();
            store.policy_mut().arm_crash("written.charge");
            assert!(store.charge(6, 9.0).is_err());
        }
        let store = Store::open(&path).unwrap();
        // The unacknowledged charge may or may not have reached disk
        // (over-counting is allowed); the acknowledged dataset must
        // have.
        assert_eq!(store.datasets().len(), 1);
        assert!(store.spent(6) == 0.0 || store.spent(6) == 9.0);
    }

    #[test]
    fn corrupt_snapshot_is_reported_not_misread() {
        let dir = tmpdir("corrupt");
        let path = dir.join("s.hcc");
        {
            let mut store = Store::open(&path).unwrap();
            store.put_dataset(&sample(8)).unwrap();
            store.checkpoint().unwrap();
        }
        // Flip one payload byte in a data page.
        let mut bytes = fs::read(&path).unwrap();
        let at = PAGE_SIZE + PAGE_HEADER + 4;
        bytes[at] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(Store::open(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn wal_records_reject_bit_flips() {
        let rec = encode_record(3, REC_CHARGE, &[1, 2, 3, 4]);
        assert!(decode_record(&rec).is_some());
        for i in 0..rec.len() {
            let mut bad = rec.clone();
            bad[i] ^= 0x01;
            assert!(
                decode_record(&bad).is_none(),
                "flip at byte {i} went undetected"
            );
        }
        // Every strict prefix is a torn record.
        for end in 0..rec.len() {
            assert!(decode_record(&rec[..end]).is_none(), "prefix {end}");
        }
    }

    #[test]
    fn snapshot_round_trips_multi_page_payloads() {
        let mut big = sample(11);
        big.histograms[0] = (1..2000u64).map(|s| (s, s % 7 + 1)).collect();
        let mut datasets = BTreeMap::new();
        datasets.insert(big.handle, big.clone());
        let mut ledger = BTreeMap::new();
        ledger.insert(11u128, 1.25f64);
        let mut payload = Vec::new();
        encode_snapshot(&mut payload, &datasets, &ledger);
        assert!(payload.len() > PAGE_PAYLOAD, "needs multiple pages");
        let image = build_file_image(&payload, 17);
        let dir = tmpdir("pages");
        let path = dir.join("s.hcc");
        fs::write(&path, &image).unwrap();
        let (d2, l2, lsn) = read_snapshot(&path).unwrap().unwrap();
        assert_eq!(d2.get(&11).unwrap(), &big);
        assert_eq!(l2.get(&11).copied(), Some(1.25));
        assert_eq!(lsn, 17);
    }
}
