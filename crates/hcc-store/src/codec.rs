//! Little-endian serialization helpers shared by the snapshot pager
//! and the WAL record codec, plus the FNV-1a 64 digest both use as
//! their integrity check.
//!
//! Everything on disk is length-prefixed and digest-guarded, so the
//! reader half ([`Reader`]) is strictly bounds-checked: a truncated or
//! bit-flipped input surfaces as a decode error, never a panic or an
//! out-of-bounds read.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64 digest.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    pub(crate) fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Appends little-endian scalars to an output buffer.
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// See [`put_u32`].
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// See [`put_u32`].
pub(crate) fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` length prefix followed by the bytes themselves.
pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, u32::try_from(bytes.len()).unwrap_or(u32::MAX));
    out.extend_from_slice(bytes);
}

/// Bounds-checked little-endian reader over a byte slice. Every
/// failure carries the field name that could not be read.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    /// Bytes consumed so far.
    pub(crate) fn consumed(&self) -> usize {
        self.at
    }

    /// Bytes left to read.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.at)
    }

    /// Takes the next `n` raw bytes.
    pub(crate) fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self.at.checked_add(n).ok_or_else(|| overflow(what))?;
        let bytes = self
            .buf
            .get(self.at..end)
            .ok_or_else(|| truncated(what, n, self.remaining()))?;
        self.at = end;
        Ok(bytes)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, String> {
        let bytes = self.take(1, what)?;
        bytes.first().copied().ok_or_else(|| truncated(what, 1, 0))
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, String> {
        let bytes = self.take(4, what)?;
        let arr = <[u8; 4]>::try_from(bytes).map_err(|_| truncated(what, 4, bytes.len()))?;
        Ok(u32::from_le_bytes(arr))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, String> {
        let bytes = self.take(8, what)?;
        let arr = <[u8; 8]>::try_from(bytes).map_err(|_| truncated(what, 8, bytes.len()))?;
        Ok(u64::from_le_bytes(arr))
    }

    pub(crate) fn u128(&mut self, what: &str) -> Result<u128, String> {
        let bytes = self.take(16, what)?;
        let arr = <[u8; 16]>::try_from(bytes).map_err(|_| truncated(what, 16, bytes.len()))?;
        Ok(u128::from_le_bytes(arr))
    }

    /// Reads a `u32` length prefix and then that many raw bytes.
    pub(crate) fn bytes(&mut self, what: &str) -> Result<&'a [u8], String> {
        let len = self.u32(what)?;
        self.take(usize::try_from(len).map_err(|_| overflow(what))?, what)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub(crate) fn string(&mut self, what: &str) -> Result<String, String> {
        let bytes = self.bytes(what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("{what}: invalid UTF-8"))
    }
}

fn truncated(what: &str, want: usize, have: usize) -> String {
    format!("{what}: need {want} bytes, have {have}")
}

fn overflow(what: &str) -> String {
    format!("{what}: length overflows")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_bytes() {
        let mut out = Vec::new();
        put_u32(&mut out, 7);
        put_u64(&mut out, u64::MAX - 1);
        put_u128(&mut out, 0x1234_5678_9abc_def0_1122_3344_5566_7788);
        put_bytes(&mut out, b"hello");
        let mut r = Reader::new(&out);
        assert_eq!(r.u32("a").unwrap(), 7);
        assert_eq!(r.u64("b").unwrap(), u64::MAX - 1);
        assert_eq!(
            r.u128("c").unwrap(),
            0x1234_5678_9abc_def0_1122_3344_5566_7788
        );
        assert_eq!(r.bytes("d").unwrap(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut r = Reader::new(&[1, 2, 3]);
        let err = r.u64("field").unwrap_err();
        assert!(err.contains("field"), "{err}");
        assert!(err.contains("need 8"), "{err}");
    }

    #[test]
    fn fnv64_matches_reference_vector() {
        // FNV-1a 64 of the empty string is the offset basis; of "a"
        // it is the published reference value.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
