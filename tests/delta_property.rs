//! Acceptance property for PR 4's delta-aware derivation: across
//! random hierarchies, leaf data, and valid deltas,
//!
//! 1. `apply_delta` (path-local, O(delta · depth)) produces exactly
//!    the counts a full bottom-up re-aggregation of the post-delta
//!    leaf tables produces;
//! 2. the engine's `derive(parent, delta)` handle equals a cold
//!    `prepare` of the post-delta dataset (fingerprint chaining); and
//! 3. a release submitted against the derived handle is
//!    **byte-identical** to the cold-prepared post-delta release and
//!    to a direct single-threaded `top_down_release` of the
//!    post-delta data.

use std::sync::Arc;

use hccount::consistency::{to_csv, top_down_release, LevelMethod, TopDownConfig};
use hccount::core::CountOfCounts;
use hccount::data::{DatasetDelta, DeltaOp};
use hccount::engine::{Engine, EngineConfig};
use hccount::hierarchy::{Hierarchy, HierarchyBuilder, NodeId};
use hccount::prelude::HierarchicalCounts;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform-depth hierarchy with the given per-level fan-outs; leaves
/// carry recycled copies of the generated size multisets.
fn build_case(
    fanouts: &[usize],
    leaf_sizes: &[Vec<u64>],
) -> (Hierarchy, Vec<NodeId>, Vec<Vec<u64>>) {
    let mut b = HierarchyBuilder::new("root");
    let mut frontier = vec![Hierarchy::ROOT];
    for &f in fanouts {
        let mut next = Vec::new();
        for &node in &frontier {
            for i in 0..f {
                next.push(b.add_child(node, format!("{node}-{i}")));
            }
        }
        frontier = next;
    }
    let h = b.build();
    // Dense per-leaf cell vectors double as the *independent*
    // reference the delta ops are replayed against.
    let dense: Vec<Vec<u64>> = frontier
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let sizes = leaf_sizes
                .get(i % leaf_sizes.len().max(1))
                .cloned()
                .unwrap_or_default();
            let mut cells: Vec<u64> = Vec::new();
            for s in sizes {
                let s = s as usize;
                if s >= cells.len() {
                    cells.resize(s + 1, 0);
                }
                cells[s] += 1;
            }
            cells
        })
        .collect();
    (h, frontier, dense)
}

fn counts_from_dense(h: &Hierarchy, leaves: &[NodeId], dense: &[Vec<u64>]) -> HierarchicalCounts {
    HierarchicalCounts::from_leaves(
        h,
        leaves
            .iter()
            .zip(dense.iter())
            .map(|(&n, cells)| (n, CountOfCounts::from_counts(cells.clone())))
            .collect(),
    )
    .expect("uniform by construction")
}

/// Builds a delta that is valid against `dense` by construction, and
/// replays it on `dense` as the independent reference.
fn make_delta(
    h: &Hierarchy,
    leaves: &[NodeId],
    dense: &mut [Vec<u64>],
    selectors: &[u8],
) -> DatasetDelta {
    let mut ops = Vec::new();
    for (k, &sel) in selectors.iter().enumerate() {
        let li = k % leaves.len();
        let region = h.name(leaves[li]).to_string();
        let occupied: Vec<u64> = dense[li]
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(s, _)| s as u64)
            .collect();
        match sel % 3 {
            // Add a fresh group.
            0 => {
                let size = u64::from(sel / 3) % 11;
                ops.push(DeltaOp::Add {
                    region,
                    size,
                    count: 1,
                });
                let s = size as usize;
                if s >= dense[li].len() {
                    dense[li].resize(s + 1, 0);
                }
                dense[li][s] += 1;
            }
            // Remove an existing group, if any.
            1 if !occupied.is_empty() => {
                let size = occupied[usize::from(sel / 3) % occupied.len()];
                ops.push(DeltaOp::Remove {
                    region,
                    size,
                    count: 1,
                });
                dense[li][size as usize] -= 1;
            }
            // Resize an existing group, if any.
            2 if !occupied.is_empty() => {
                let old_size = occupied[usize::from(sel / 3) % occupied.len()];
                let new_size = old_size + 1 + u64::from(sel % 5);
                ops.push(DeltaOp::Resize {
                    region,
                    old_size,
                    new_size,
                    count: 1,
                });
                dense[li][old_size as usize] -= 1;
                let s = new_size as usize;
                if s >= dense[li].len() {
                    dense[li].resize(s + 1, 0);
                }
                dense[li][s] += 1;
            }
            _ => {}
        }
    }
    DatasetDelta { ops }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn derived_releases_are_byte_identical_to_cold_prepared_post_delta(
        fanouts in prop::collection::vec(1usize..4, 1..4),
        leaf_sizes in prop::collection::vec(
            prop::collection::vec(0u64..30, 1..8), 1..5),
        selectors in prop::collection::vec(any::<u8>(), 1..12),
        seed in any::<u64>(),
        eps in 0.1f64..4.0,
    ) {
        let (h, leaves, mut dense) = build_case(&fanouts, &leaf_sizes);
        let base = counts_from_dense(&h, &leaves, &dense);
        let delta = make_delta(&h, &leaves, &mut dense, &selectors);

        // (1) Path-local application == full bottom-up re-aggregation
        // of the independently replayed leaf tables.
        let mut incremental = base.clone();
        delta.apply_to(&h, &mut incremental).unwrap();
        let full = counts_from_dense(&h, &leaves, &dense);
        prop_assert_eq!(&incremental, &full);

        // (2) + (3) through the engine: derive vs cold prepare.
        let hierarchy = Arc::new(h);
        let engine = Engine::start(EngineConfig::default().with_workers(2));
        let parent = engine
            .prepare(Arc::clone(&hierarchy), Arc::new(base))
            .unwrap();
        let derived = engine.derive(parent, &delta).unwrap();
        let cold = engine
            .prepare(Arc::clone(&hierarchy), Arc::new(full.clone()))
            .unwrap();
        prop_assert_eq!(cold, derived, "fingerprint chaining");

        let cfg = TopDownConfig::new(eps)
            .with_method(LevelMethod::Cumulative { bound: 64 });
        // Cache disabled comparison is implicit: distinct handles are
        // the same handle here, so force two *computations* by using
        // an engine whose cache is off for the second run.
        let id = engine.submit_prepared(derived, cfg.clone(), seed).unwrap();
        let (via_derived, _) = engine.wait(id).unwrap();

        let uncached = Engine::start(
            EngineConfig::default().with_workers(2).with_cache_capacity(0),
        );
        let cold2 = uncached
            .prepare(Arc::clone(&hierarchy), Arc::new(full.clone()))
            .unwrap();
        let id = uncached.submit_prepared(cold2, cfg.clone(), seed).unwrap();
        let (via_cold, from_cache) = uncached.wait(id).unwrap();
        prop_assert!(!from_cache);
        prop_assert_eq!(&via_derived.csv, &via_cold.csv);

        // And both equal the direct library release of the post-delta
        // data.
        let direct = {
            let mut rng = StdRng::seed_from_u64(seed);
            to_csv(
                &hierarchy,
                &top_down_release(&hierarchy, &full, &cfg, &mut rng).unwrap(),
            )
        };
        prop_assert_eq!(&via_derived.csv, &direct);
    }
}
