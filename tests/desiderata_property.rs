//! Property tests: for *arbitrary* random hierarchies and leaf data,
//! the top-down release satisfies every desideratum of Section 3.

use hccount::consistency::{
    bottom_up_release, top_down_release, LevelMethod, MergeStrategy, TopDownConfig,
};
use hccount::core::CountOfCounts;
use hccount::hierarchy::{Hierarchy, HierarchyBuilder, NodeId};
use hccount::prelude::HierarchicalCounts;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a random uniform-depth hierarchy with the given per-level
/// fan-outs and random group-size multisets at the leaves.
fn build_case(fanouts: &[usize], leaf_sizes: &[Vec<u64>]) -> (Hierarchy, HierarchicalCounts) {
    let mut b = HierarchyBuilder::new("root");
    let mut frontier = vec![Hierarchy::ROOT];
    for &f in fanouts {
        let mut next = Vec::new();
        for &node in &frontier {
            for i in 0..f {
                next.push(b.add_child(node, format!("{node}-{i}")));
            }
        }
        frontier = next;
    }
    let h = b.build();
    let leaves: Vec<(NodeId, CountOfCounts)> = frontier
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let sizes = leaf_sizes
                .get(i % leaf_sizes.len().max(1))
                .cloned()
                .unwrap_or_default();
            (n, CountOfCounts::from_group_sizes(sizes))
        })
        .collect();
    let data = HierarchicalCounts::from_leaves(&h, leaves).expect("uniform by construction");
    (h, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn topdown_release_satisfies_desiderata(
        fanouts in prop::collection::vec(1usize..4, 1..3),
        leaf_sizes in prop::collection::vec(
            prop::collection::vec(0u64..40, 0..12), 1..6),
        seed in any::<u64>(),
        eps in 0.05f64..5.0,
        use_hg in any::<bool>(),
        weighted in any::<bool>(),
    ) {
        let (h, data) = build_case(&fanouts, &leaf_sizes);
        let method = if use_hg {
            LevelMethod::Unattributed
        } else {
            LevelMethod::Cumulative { bound: 64 }
        };
        let merge = if weighted {
            MergeStrategy::WeightedAverage
        } else {
            MergeStrategy::PlainAverage
        };
        let cfg = TopDownConfig::new(eps).with_method(method).with_merge(merge);
        let mut rng = StdRng::seed_from_u64(seed);
        let rel = top_down_release(&h, &data, &cfg, &mut rng).expect("uniform depth");

        // Consistency.
        prop_assert!(rel.validate(&h).is_ok());
        // Group-size desideratum at every node (integrality and
        // nonnegativity are type invariants of CountOfCounts).
        for node in h.iter() {
            prop_assert_eq!(rel.groups(node), data.groups(node));
        }
    }

    #[test]
    fn bottom_up_release_satisfies_desiderata(
        fanouts in prop::collection::vec(1usize..4, 1..3),
        leaf_sizes in prop::collection::vec(
            prop::collection::vec(0u64..30, 0..10), 1..5),
        seed in any::<u64>(),
    ) {
        let (h, data) = build_case(&fanouts, &leaf_sizes);
        let mut rng = StdRng::seed_from_u64(seed);
        let rel = bottom_up_release(
            &h, &data, LevelMethod::Cumulative { bound: 64 }, 1.0, &mut rng,
        ).expect("uniform depth");
        prop_assert!(rel.validate(&h).is_ok());
        for node in h.iter() {
            prop_assert_eq!(rel.groups(node), data.groups(node));
        }
    }

    /// The released total entity count at the root is within plausible
    /// noise bounds at high ε — a smoke check that merging never
    /// teleports mass.
    #[test]
    fn high_budget_release_close_to_truth(
        leaf_sizes in prop::collection::vec(
            prop::collection::vec(0u64..20, 1..10), 2..5),
        seed in any::<u64>(),
    ) {
        let (h, data) = build_case(&[leaf_sizes.len()], &leaf_sizes);
        let cfg = TopDownConfig::new(2000.0)
            .with_method(LevelMethod::Cumulative { bound: 32 });
        let mut rng = StdRng::seed_from_u64(seed);
        let rel = top_down_release(&h, &data, &cfg, &mut rng).expect("uniform depth");
        for node in h.iter() {
            prop_assert_eq!(
                hccount::core::emd(rel.node(node), data.node(node)), 0,
                "node {} diverged at enormous budget", node
            );
        }
    }
}
