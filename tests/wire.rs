//! Integration tests of the event-driven wire path: the epoll reactor
//! serving the framed multiplexed protocol and the legacy line
//! protocol on one port.
//!
//! The load-bearing claims: (1) results over the framed wire are
//! byte-identical to the legacy line protocol, (2) a legacy client is
//! served by the reactor unchanged, (3) many connections multiplex
//! onto the single reactor thread, (4) admission control sheds with
//! structured `BUSY` frames instead of stalling, and (5) a version
//! mismatch is answered with a typed error, never a hang or a panic.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

use hccount::data::{Dataset, DatasetKind};
use hccount::engine::protocol::frame::{
    encode_frame, parse_busy, parse_error, read_frame, submit_frame, Frame, B_QUOTA,
    DEFAULT_MAX_FRAME, E_BUDGET, E_VERSION, T_BUSY, T_ERROR, T_HELLO, T_HELLO_OK, T_RESULT,
};
use hccount::engine::{
    protocol::SubmitParams, serve_blocking_with, serve_reactor, Client, Engine, EngineConfig,
    MuxClient, ReactorConfig, RetryPolicy, ServeConfig,
};

fn dataset() -> Dataset {
    Dataset::generate(DatasetKind::Housing, 0.001, 5)
}

fn engine(workers: usize) -> Arc<Engine> {
    Arc::new(Engine::start(
        EngineConfig::default()
            .with_workers(workers)
            .with_queue_capacity(64),
    ))
}

/// Acceptance criterion: a 32-point ε sweep pipelined on one framed
/// connection returns, point for point, the same bytes the legacy
/// line protocol returns from a blocking server — the wire is an
/// encoding, not a second code path with its own numerics.
#[test]
fn framed_pipelined_sweep_is_bit_identical_to_the_legacy_wire() {
    let ds = dataset();
    let (hierarchy_csv, groups_csv, entities_csv) = ds.to_csv_tables();
    let epsilons: Vec<f64> = (1..=32).map(|i| i as f64 / 8.0).collect();
    let base = SubmitParams {
        bound: 500,
        ..SubmitParams::default()
    };

    // Legacy wire, blocking server: the pre-reactor baseline.
    let blocking = serve_blocking_with(engine(2), "127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut legacy = Client::connect(blocking.addr()).unwrap();
    let handle = legacy
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();
    let mut baseline: Vec<String> = Vec::new();
    legacy
        .sweep(&base, handle, &epsilons, |_, result| {
            baseline.push(result.unwrap().csv);
        })
        .unwrap();
    legacy.quit().unwrap();
    blocking.shutdown();

    // Framed wire, reactor server: every point pipelined up front.
    let reactor = serve_reactor(engine(2), "127.0.0.1:0", ReactorConfig::default()).unwrap();
    let mut mux = MuxClient::connect(reactor.addr()).unwrap();
    let handle = mux
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();
    let points = mux.sweep(&base, handle, &epsilons).unwrap();
    mux.quit().unwrap();
    reactor.shutdown();

    assert_eq!(points.len(), baseline.len());
    for (i, (point, expected)) in points.iter().zip(&baseline).enumerate() {
        let csv = &point.outcome.as_ref().unwrap().csv;
        assert_eq!(
            csv, expected,
            "ε grid point {i} differs between the framed and legacy wires"
        );
    }
}

/// Satellite regression: a legacy line-protocol client pointed at the
/// reactor (first byte is ASCII, not the frame magic) gets the exact
/// bytes the old blocking server produced, and the reactor counts the
/// legacy connection in its wire telemetry.
#[test]
fn legacy_client_is_served_by_the_reactor_unchanged() {
    let ds = dataset();
    let (hierarchy_csv, groups_csv, entities_csv) = ds.to_csv_tables();
    let params = SubmitParams {
        bound: 500,
        ..SubmitParams::default()
    };

    let run = |addr: std::net::SocketAddr| -> String {
        let mut client = Client::connect(addr).unwrap();
        assert!(client.ping().unwrap());
        let id = client
            .submit(&params, &hierarchy_csv, &groups_csv, &entities_csv)
            .unwrap()
            .unwrap();
        let release = client.wait(id).unwrap().unwrap();
        client.quit().unwrap();
        release.csv
    };

    let blocking = serve_blocking_with(engine(1), "127.0.0.1:0", ServeConfig::default()).unwrap();
    let expected = run(blocking.addr());
    blocking.shutdown();

    let reactor = serve_reactor(engine(1), "127.0.0.1:0", ReactorConfig::default()).unwrap();
    let got = run(reactor.addr());
    assert_eq!(got, expected, "reactor changed the legacy wire's bytes");

    // The auto-detected legacy connection shows up in wire telemetry.
    let mut client = Client::connect(reactor.addr()).unwrap();
    let metrics = client.metrics().unwrap();
    let legacy_total = metrics
        .lines()
        .find_map(|l| l.strip_prefix("hcc_wire_legacy_connections_total "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap();
    assert!(
        legacy_total >= 2,
        "legacy connections uncounted: {legacy_total}"
    );
    client.quit().unwrap();
    reactor.shutdown();
}

/// Acceptance criterion: 64 concurrent framed connections multiplex
/// onto the reactor; every submit completes with byte-identical
/// results (same prepared handle, same seed).
#[test]
fn sixty_four_concurrent_connections_all_complete() {
    let ds = dataset();
    let (hierarchy_csv, groups_csv, entities_csv) = ds.to_csv_tables();
    let reactor = serve_reactor(engine(2), "127.0.0.1:0", ReactorConfig::default()).unwrap();
    let addr = reactor.addr();

    let mut seed_client = MuxClient::connect(addr).unwrap();
    let handle = seed_client
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();
    let params = SubmitParams {
        bound: 500,
        ..SubmitParams::default()
    };
    let expected = seed_client
        .submit_prepared(&params, handle)
        .unwrap()
        .unwrap()
        .csv;

    let threads: Vec<_> = (0..64)
        .map(|_| {
            let params = params.clone();
            std::thread::spawn(move || {
                let mut client = MuxClient::connect(addr).unwrap();
                let release = client.submit_prepared(&params, handle).unwrap().unwrap();
                client.quit().unwrap();
                release.csv
            })
        })
        .collect();
    for t in threads {
        assert_eq!(t.join().unwrap(), expected);
    }
    seed_client.quit().unwrap();
    reactor.shutdown();
}

/// Satellite regression: with a one-request interactive quota and no
/// park buffer, the second of two pipelined submits is shed with a
/// structured `BUSY` frame carrying the quota code — the connection
/// stays open and the first request still completes.
#[test]
fn quota_overflow_sheds_with_a_busy_frame() {
    let ds = dataset();
    let (hierarchy_csv, groups_csv, entities_csv) = ds.to_csv_tables();
    let reactor = serve_reactor(
        engine(1),
        "127.0.0.1:0",
        ReactorConfig::default()
            .with_interactive_inflight(1)
            .with_park_capacity(0),
    )
    .unwrap();

    let mut stream = TcpStream::connect(reactor.addr()).unwrap();
    let mut out = Vec::new();
    encode_frame(&mut out, &Frame::empty(T_HELLO, 1));
    stream.write_all(&out).unwrap();
    let hello = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(hello.ftype, T_HELLO_OK);

    // Both submits land in one segment, so the reactor admits the
    // first and judges the second against a full quota before the
    // first can possibly complete.
    let tables = Some([
        hierarchy_csv.as_str(),
        groups_csv.as_str(),
        entities_csv.as_str(),
    ]);
    let params = SubmitParams {
        bound: 500,
        ..SubmitParams::default()
    };
    let mut out = Vec::new();
    encode_frame(&mut out, &submit_frame(2, &params, tables, false));
    encode_frame(&mut out, &submit_frame(3, &params, tables, false));
    stream.write_all(&out).unwrap();

    let first = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!((first.ftype, first.request_id), (T_BUSY, 3));
    let busy = parse_busy(&first.payload).unwrap();
    assert_eq!(busy.code, B_QUOTA);
    assert!(busy.retry_ms > 0);

    let second = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!((second.ftype, second.request_id), (T_RESULT, 2));
    reactor.shutdown();
}

/// Satellite regression: a HELLO declaring an unsupported protocol
/// version is answered with a typed `E_VERSION` error frame and the
/// connection is closed — not ignored, not a panic.
#[test]
fn version_mismatch_is_rejected_with_a_typed_error() {
    let reactor = serve_reactor(engine(1), "127.0.0.1:0", ReactorConfig::default()).unwrap();
    let mut stream = TcpStream::connect(reactor.addr()).unwrap();
    let mut out = Vec::new();
    encode_frame(&mut out, &Frame::empty(T_HELLO, 1));
    out[1] = 99; // future protocol version
    stream.write_all(&out).unwrap();

    let reply = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(reply.ftype, T_ERROR);
    let (code, msg) = parse_error(&reply.payload);
    assert_eq!(code, E_VERSION, "{msg}");
    assert!(msg.contains("version"), "{msg}");

    // The server closes after the error frame drains.
    use std::io::Read;
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    reactor.shutdown();
}

/// Satellite: `BUSY` sheds are retried with the bounded backoff
/// ladder. The server is pinned to one bulk-inflight slot and a
/// one-slot park buffer, so a four-point pipelined sweep *must* shed
/// at least one point — the default policy resubmits until every
/// point completes, and `RetryPolicy::disabled` surfaces the shed as
/// a typed `busy:` failure instead.
#[test]
fn busy_sheds_are_retried_with_bounded_backoff() {
    let ds = dataset();
    let (hierarchy_csv, groups_csv, entities_csv) = ds.to_csv_tables();
    let epsilons: Vec<f64> = (1..=4).map(f64::from).collect();
    let reactor = serve_reactor(
        engine(1),
        "127.0.0.1:0",
        ReactorConfig::default()
            .with_bulk_inflight(1)
            .with_park_capacity(1),
    )
    .unwrap();

    // Default ladder: sheds are invisible — all four points complete.
    let mut mux = MuxClient::connect(reactor.addr()).unwrap();
    let handle = mux
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();
    let base = SubmitParams {
        bound: 500,
        ..SubmitParams::default()
    };
    let points = mux.sweep(&base, handle, &epsilons).unwrap();
    for (i, p) in points.iter().enumerate() {
        assert!(
            p.outcome.is_ok(),
            "point {i} failed despite retries: {:?}",
            p.outcome
        );
    }
    mux.quit().unwrap();

    // `--no-retry`: the overflow point fails fast with the stable
    // `busy:` token (a fresh seed keeps the cache out of the way).
    let mut mux = MuxClient::connect(reactor.addr())
        .unwrap()
        .with_retry_policy(RetryPolicy::disabled());
    let handle = mux
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();
    let base = SubmitParams {
        bound: 500,
        seed: 43,
        ..SubmitParams::default()
    };
    let points = mux.sweep(&base, handle, &epsilons).unwrap();
    let shed = points
        .iter()
        .filter(|p| matches!(&p.outcome, Err(m) if m.starts_with(hccount::engine::protocol::BUSY)))
        .count();
    assert!(
        shed >= 1,
        "a 4-point sweep against 1 bulk slot + 1 park slot must shed: {:?}",
        points.iter().map(|p| p.outcome.is_ok()).collect::<Vec<_>>()
    );
    assert!(
        points.iter().any(|p| p.outcome.is_ok()),
        "the admitted points still complete"
    );
    mux.quit().unwrap();
    reactor.shutdown();
}

/// Tentpole acceptance: a submit pushing a dataset's cumulative ε
/// past `--budget-cap` is refused with a *typed* budget error on both
/// wires — `E_BUDGET` on the framed protocol, the stable `budget:`
/// token on the legacy line protocol — and the refusal is not
/// retryable backpressure.
#[test]
fn budget_cap_refusal_is_typed_on_both_wires() {
    let ds = dataset();
    let (hierarchy_csv, groups_csv, entities_csv) = ds.to_csv_tables();
    let engine = Arc::new(Engine::start(
        EngineConfig::default().with_workers(1).with_budget_cap(2.5),
    ));
    let reactor = serve_reactor(engine, "127.0.0.1:0", ReactorConfig::default()).unwrap();
    let base = SubmitParams {
        bound: 500,
        ..SubmitParams::default()
    };

    // Spend ε=2.0 of the 2.5 cap over the framed wire.
    let mut mux = MuxClient::connect(reactor.addr()).unwrap();
    let handle = mux
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();
    for seed in [42, 43] {
        let params = SubmitParams {
            epsilon: 1.0,
            seed,
            ..base.clone()
        };
        mux.submit_prepared(&params, handle).unwrap().unwrap();
    }
    mux.quit().unwrap();

    // Framed wire: the refusal frame carries the E_BUDGET code.
    let mut stream = TcpStream::connect(reactor.addr()).unwrap();
    let mut out = Vec::new();
    encode_frame(&mut out, &Frame::empty(T_HELLO, 1));
    stream.write_all(&out).unwrap();
    assert_eq!(
        read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap().ftype,
        T_HELLO_OK
    );
    let params = SubmitParams {
        epsilon: 1.0,
        seed: 44,
        handle: Some(handle),
        ..base.clone()
    };
    let mut out = Vec::new();
    encode_frame(&mut out, &submit_frame(2, &params, None, false));
    stream.write_all(&out).unwrap();
    let reply = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!((reply.ftype, reply.request_id), (T_ERROR, 2));
    let (code, msg) = parse_error(&reply.payload);
    assert_eq!(code, E_BUDGET, "{msg}");
    assert!(msg.contains("privacy budget exhausted"), "{msg}");

    // Legacy wire (same port, auto-detected): the stable `budget:`
    // token leads the rejection, distinct from retryable `busy:`.
    let mut legacy = Client::connect(reactor.addr()).unwrap();
    let refused = legacy
        .submit_prepared(
            &SubmitParams {
                epsilon: 1.0,
                seed: 45,
                ..base.clone()
            },
            handle,
        )
        .unwrap()
        .unwrap_err();
    assert!(
        refused.starts_with(hccount::engine::protocol::BUDGET),
        "{refused}"
    );
    assert!(!refused.starts_with(hccount::engine::protocol::BUSY));
    // An under-cap point on the same connection still works: the
    // refusal poisoned nothing.
    let ok = legacy
        .submit_prepared(
            &SubmitParams {
                epsilon: 0.25,
                seed: 46,
                ..base.clone()
            },
            handle,
        )
        .unwrap();
    let id = ok.unwrap();
    legacy.wait(id).unwrap().unwrap();
    legacy.quit().unwrap();
    reactor.shutdown();
}
