//! Cross-crate statistical properties of the noise machinery that the
//! privacy guarantees lean on.

use hccount::noise::{
    DiscreteGaussian, DoubleGeometric, GaussianMechanism, GeometricMechanism, LaplaceMechanism,
    ZCdpBudget,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The DP-defining property of the double-geometric, checked across
/// several adjacent output pairs: `P(X = k)/P(X = k+1) = e^(ε/Δ)` for
/// `k ≥ 0`, so no output shift is more informative than ε allows.
#[test]
fn geometric_likelihood_ratios_bounded_by_epsilon() {
    let eps = 0.8;
    let d = DoubleGeometric::new(eps, 1.0);
    let mut rng = StdRng::seed_from_u64(301);
    let n = 600_000;
    let mut freq = std::collections::HashMap::new();
    for _ in 0..n {
        *freq.entry(d.sample(&mut rng)).or_insert(0u64) += 1;
    }
    let bound = eps.exp();
    for k in 0..4i64 {
        let a = freq.get(&k).copied().unwrap_or(0) as f64;
        let b = freq.get(&(k + 1)).copied().unwrap_or(0) as f64;
        if b < 1000.0 {
            continue; // not enough mass for a stable ratio
        }
        let ratio = a / b;
        assert!(
            (ratio - bound).abs() < 0.25 * bound,
            "P({k})/P({}) = {ratio}, expected ≈ {bound}",
            k + 1
        );
    }
}

/// Geometric noise variance beats the Laplace mechanism it replaces —
/// one of the paper's two reasons for choosing it.
#[test]
fn geometric_variance_below_laplace() {
    for &eps in &[0.1, 0.5, 1.0, 2.0] {
        let g = GeometricMechanism::new(eps, 1.0);
        let l = LaplaceMechanism::new(eps, 1.0);
        assert!(
            g.variance() < l.variance(),
            "ε = {eps}: geometric {} ≥ laplace {}",
            g.variance(),
            l.variance()
        );
    }
}

/// The discrete Gaussian's tails are sub-Gaussian: essentially no mass
/// beyond 6σ in a large sample (a Laplace of equal variance would put
/// noticeable mass there).
#[test]
fn discrete_gaussian_tails() {
    let sigma = 3.0;
    let d = DiscreteGaussian::new(sigma);
    let mut rng = StdRng::seed_from_u64(302);
    let n = 300_000;
    let beyond = (0..n)
        .filter(|_| (d.sample(&mut rng) as f64).abs() > 6.0 * sigma)
        .count();
    assert!(beyond <= 2, "{beyond} of {n} samples beyond 6σ");
}

/// zCDP composition: two mechanisms of ρ/2 each equal one of ρ, and
/// the (ε, δ) conversion is monotone in ρ.
#[test]
fn zcdp_composition_and_conversion() {
    let m_half = GaussianMechanism::with_rho(0.05, 1.0);
    assert!((2.0 * m_half.rho() - 0.1).abs() < 1e-12);
    let small = ZCdpBudget::new(0.05).epsilon(1e-9);
    let large = ZCdpBudget::new(0.1).epsilon(1e-9);
    assert!(small < large);
}

/// Mechanism noise is integer-valued end to end — the integrality
/// desideratum starts at the noise layer.
#[test]
fn outputs_are_integers_by_construction() {
    let mut rng = StdRng::seed_from_u64(303);
    let g = GeometricMechanism::new(0.5, 2.0);
    let gauss = GaussianMechanism::with_rho(0.1, 1.0);
    for v in [0u64, 1, 1_000_000] {
        // i64 return types make this a compile-time fact; spot-check
        // values round-trip.
        let _a: i64 = g.privatize(v, &mut rng);
        let _b: i64 = gauss.privatize(v, &mut rng);
    }
}
