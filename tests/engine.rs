//! Integration tests of the `hcc-engine` subsystem: multi-worker
//! byte-identity with the direct library call, and the TCP server
//! driven end-to-end over a loopback connection.

use std::sync::Arc;

use hccount::consistency::{to_csv, top_down_release, LevelMethod, TopDownConfig};
use hccount::data::{Dataset, DatasetKind};
use hccount::engine::{
    protocol::SubmitParams, serve, Client, Engine, EngineConfig, ReleaseRequest,
};
use hccount::hierarchy::hierarchy_to_csv;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> Dataset {
    Dataset::generate(DatasetKind::Housing, 0.001, 5)
}

fn config() -> TopDownConfig {
    TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 1000 })
}

/// Acceptance criterion: the engine with ≥2 workers produces a
/// byte-identical release CSV to a direct single-threaded
/// `top_down_release` call with the same seed.
#[test]
fn engine_multi_worker_release_is_byte_identical_to_direct_call() {
    let ds = dataset();
    let cfg = config();
    let direct = {
        let mut rng = StdRng::seed_from_u64(99);
        to_csv(
            &ds.hierarchy,
            &top_down_release(&ds.hierarchy, &ds.data, &cfg, &mut rng).unwrap(),
        )
    };

    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(4)
            .with_threads_per_job(3),
    );
    let hierarchy = Arc::new(ds.hierarchy);
    let data = Arc::new(ds.data);
    for _ in 0..2 {
        // Second round exercises the cache path; bytes must not change.
        let id = engine
            .submit(ReleaseRequest::new(
                Arc::clone(&hierarchy),
                Arc::clone(&data),
                cfg.clone(),
                99,
            ))
            .unwrap();
        let (result, _) = engine.wait(id).unwrap();
        assert_eq!(result.csv, direct);
    }
    let stats = engine.stats();
    assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
}

/// Builds the three CSV tables a server submission needs from a
/// generated dataset (mirrors `hcc generate`'s emitter).
fn tables(ds: &Dataset) -> (String, String, String) {
    let hierarchy_csv = hierarchy_to_csv(&ds.hierarchy);
    let mut groups = String::from("group_id,region_name\n");
    let mut entities = String::from("entity_id,group_id\n");
    let (mut gid, mut eid) = (0u64, 0u64);
    for leaf in ds.hierarchy.leaves() {
        let name = ds.hierarchy.name(leaf);
        for run in ds.data.node(leaf).to_unattributed().runs() {
            for _ in 0..run.count {
                groups.push_str(&format!("g{gid},{name}\n"));
                for _ in 0..run.size {
                    entities.push_str(&format!("e{eid},g{gid}\n"));
                    eid += 1;
                }
                gid += 1;
            }
        }
    }
    (hierarchy_csv, groups, entities)
}

/// Acceptance criterion: submit → poll → fetch over a real loopback
/// TCP connection.
#[test]
fn serve_end_to_end_over_loopback() {
    let ds = dataset();
    let (hierarchy_csv, groups_csv, entities_csv) = tables(&ds);
    let expected = {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = TopDownConfig::new(2.0).with_method(LevelMethod::Cumulative { bound: 500 });
        to_csv(
            &ds.hierarchy,
            &top_down_release(&ds.hierarchy, &ds.data, &cfg, &mut rng).unwrap(),
        )
    };

    let engine = Engine::start(EngineConfig::default().with_workers(2));
    let handle = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(client.ping().unwrap());

    let params = SubmitParams {
        epsilon: 2.0,
        method: "hc".into(),
        bound: 500,
        seed: 7,
    };
    let id = client
        .submit(&params, &hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .expect("server accepts a well-formed submission");

    // Poll until done, then fetch; the released bytes must match the
    // direct library call (the server round-trips CSV losslessly).
    loop {
        let status = client.status(id).unwrap();
        if status.starts_with("DONE") {
            break;
        }
        assert!(
            status == "QUEUED" || status == "RUNNING",
            "unexpected status {status:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let fetched = client.fetch(id).unwrap().unwrap();
    assert_eq!(fetched.csv, expected);
    assert!(!fetched.from_cache);

    // A second identical submission is served from the cache; WAIT
    // both blocks and downloads.
    let id2 = client
        .submit(&params, &hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();
    let again = client.wait(id2).unwrap().unwrap();
    assert_eq!(again.csv, expected);
    assert!(again.from_cache);

    let stats = client.stats().unwrap();
    assert!(stats.contains("cache_hits=1"), "{stats}");
    assert!(stats.contains("submitted=2"), "{stats}");

    client.quit().unwrap();
    handle.shutdown();
}

/// Malformed wire requests get one-line errors and keep the
/// connection usable.
#[test]
fn server_reports_errors_and_survives_them() {
    let engine = Engine::start(EngineConfig::default());
    let handle = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Unknown job.
    let err = client
        .fetch(hccount::engine::JobId(404))
        .unwrap()
        .unwrap_err();
    assert!(err.contains("unknown job"), "{err}");

    // Bad submission: groups referencing a region missing from the
    // hierarchy. The error names the bad region.
    let err = client
        .submit(
            &SubmitParams::default(),
            "region,parent\nroot,\nva,root\n",
            "g1,nowhere\n",
            "e1,g1\n",
        )
        .unwrap()
        .unwrap_err();
    assert!(err.contains("nowhere"), "{err}");

    // Bad parameter line: the client has already written the CSV
    // sections, so the server must drain them before replying — the
    // connection stays in sync for the next request.
    let err = client
        .submit(
            &SubmitParams {
                epsilon: 0.0,
                ..SubmitParams::default()
            },
            "region,parent\nroot,\nva,root\n",
            "g1,va\n",
            "e1,g1\n",
        )
        .unwrap()
        .unwrap_err();
    assert!(err.contains("positive and finite"), "{err}");

    // Connection still works afterwards.
    assert!(client.ping().unwrap());
    client.quit().unwrap();
    handle.shutdown();
}

/// Hand-rolled wire requests with broken section framing: a
/// well-framed unknown section is drained and rejected with the
/// connection kept; an unparseable header closes the connection
/// (stale payload must never be parsed as commands).
#[test]
fn raw_protocol_framing_errors() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let engine = Engine::start(EngineConfig::default());
    let handle = serve(Arc::new(engine), "127.0.0.1:0").unwrap();

    // Misspelled but well-framed section label: the one payload line
    // is drained, the submit is rejected, and PING still answers.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    write!(stream, "SUBMIT epsilon=1\nHIERACHY 1\nroot,\nEND\nPING\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR"), "{line:?}");
    assert!(line.contains("HIERACHY"), "{line:?}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "PONG");

    // Unparseable section length: framing is lost, so the server
    // reports once and closes instead of misreading the payload.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    write!(stream, "SUBMIT epsilon=1\nHIERARCHY x\nroot,\nEND\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR"), "{line:?}");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection closed");

    // Absurd declared section size: rejected before any payload is
    // buffered, and the connection is closed.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    write!(stream, "SUBMIT epsilon=1\nHIERARCHY 18446744073709551615\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("ERR") && line.contains("limit"),
        "{line:?}"
    );
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection closed");

    handle.shutdown();
}
