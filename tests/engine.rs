//! Integration tests of the `hcc-engine` subsystem: multi-worker
//! byte-identity with the direct library call, and the TCP server
//! driven end-to-end over a loopback connection.

use std::sync::Arc;
use std::time::Duration;

use hccount::consistency::{to_csv, top_down_release, LevelMethod, TopDownConfig};
use hccount::data::{Dataset, DatasetKind};
use hccount::data::{DatasetDelta, DeltaOp};
use hccount::engine::{
    protocol::SubmitParams, serve, serve_with, Client, DatasetHandle, Engine, EngineConfig,
    EngineError, JobStatus, ReleaseRequest, ServeConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> Dataset {
    Dataset::generate(DatasetKind::Housing, 0.001, 5)
}

fn config() -> TopDownConfig {
    TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 1000 })
}

/// Acceptance criterion: the engine with ≥2 workers produces a
/// byte-identical release CSV to a direct single-threaded
/// `top_down_release` call with the same seed.
#[test]
fn engine_multi_worker_release_is_byte_identical_to_direct_call() {
    let ds = dataset();
    let cfg = config();
    let direct = {
        let mut rng = StdRng::seed_from_u64(99);
        to_csv(
            &ds.hierarchy,
            &top_down_release(&ds.hierarchy, &ds.data, &cfg, &mut rng).unwrap(),
        )
    };

    let engine = Engine::start(EngineConfig::default().with_workers(4));
    let hierarchy = Arc::new(ds.hierarchy);
    let data = Arc::new(ds.data);
    for _ in 0..2 {
        // Second round exercises the cache path; bytes must not change.
        let id = engine
            .submit(ReleaseRequest::new(
                Arc::clone(&hierarchy),
                Arc::clone(&data),
                cfg.clone(),
                99,
            ))
            .unwrap();
        let (result, _) = engine.wait(id).unwrap();
        assert_eq!(result.csv, direct);
    }
    let stats = engine.stats();
    assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
}

/// The three CSV tables a server submission needs (the `hcc
/// generate` emitter, shared via [`Dataset::to_csv_tables`]).
fn tables(ds: &Dataset) -> (String, String, String) {
    ds.to_csv_tables()
}

/// Acceptance criterion: submit → poll → fetch over a real loopback
/// TCP connection.
#[test]
fn serve_end_to_end_over_loopback() {
    let ds = dataset();
    let (hierarchy_csv, groups_csv, entities_csv) = tables(&ds);
    let expected = {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = TopDownConfig::new(2.0).with_method(LevelMethod::Cumulative { bound: 500 });
        to_csv(
            &ds.hierarchy,
            &top_down_release(&ds.hierarchy, &ds.data, &cfg, &mut rng).unwrap(),
        )
    };

    let engine = Engine::start(EngineConfig::default().with_workers(2));
    let handle = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(client.ping().unwrap());

    let params = SubmitParams {
        epsilon: 2.0,
        method: "hc".into(),
        bound: 500,
        seed: 7,
        handle: None,
    };
    let id = client
        .submit(&params, &hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .expect("server accepts a well-formed submission");

    // Poll until done, then fetch; the released bytes must match the
    // direct library call (the server round-trips CSV losslessly).
    loop {
        let status = client.status(id).unwrap();
        if status.starts_with("DONE") {
            break;
        }
        assert!(
            status == "QUEUED" || status == "RUNNING",
            "unexpected status {status:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let fetched = client.fetch(id).unwrap().unwrap();
    assert_eq!(fetched.csv, expected);
    assert!(!fetched.from_cache);

    // A second identical submission is served from the cache; WAIT
    // both blocks and downloads.
    let id2 = client
        .submit(&params, &hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();
    let again = client.wait(id2).unwrap().unwrap();
    assert_eq!(again.csv, expected);
    assert!(again.from_cache);

    let stats = client.stats().unwrap();
    assert!(stats.contains("cache_hits=1"), "{stats}");
    assert!(stats.contains("submitted=2"), "{stats}");

    client.quit().unwrap();
    handle.shutdown();
}

/// Acceptance criterion: `PREPARE` → `SUBMIT`-by-handle → `UNPREPARE`
/// over loopback TCP. Releases via a prepared handle are byte-
/// identical to inline submissions with the same seed, and an ε-sweep
/// over one handle streams per-ε results on a single connection.
#[test]
fn prepare_sweep_unprepare_over_loopback() {
    let ds = dataset();
    let (hierarchy_csv, groups_csv, entities_csv) = tables(&ds);
    let engine = Engine::start(EngineConfig::default().with_workers(2));
    let handle = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let ds_handle = client
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .expect("server accepts well-formed tables");
    // Content-addressed: preparing the same tables again returns the
    // same handle (and bumps the refcount).
    let again = client
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();
    assert_eq!(ds_handle, again);
    let stats = client.stats().unwrap();
    // `prepared=` counts PREPARE calls accepted (mirrors
    // `EngineStats::prepared`); `prepared_datasets=` is the live
    // registry size — two preparations of identical content are one
    // dataset.
    assert!(stats.contains("prepared=2"), "{stats}");
    assert!(stats.contains("prepared_datasets=1"), "{stats}");

    // Inline and by-handle submissions of the same request must be
    // byte-identical — and share one cache entry.
    let params = SubmitParams {
        epsilon: 1.5,
        method: "hc".into(),
        bound: 500,
        seed: 3,
        handle: None,
    };
    let inline_id = client
        .submit(&params, &hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();
    let inline = client.wait(inline_id).unwrap().unwrap();
    let by_handle_id = client.submit_prepared(&params, ds_handle).unwrap().unwrap();
    let by_handle = client.wait(by_handle_id).unwrap().unwrap();
    assert_eq!(inline.csv, by_handle.csv);
    assert!(
        by_handle.from_cache,
        "handle submission must hit the cache entry the inline one filled"
    );

    // ε-sweep over the prepared handle, streamed in grid order.
    let epsilons = [0.5, 1.0, 2.0];
    let mut seen = Vec::new();
    client
        .sweep(&params, ds_handle, &epsilons, |eps, result| {
            let release = result.expect("sweep point succeeds");
            // Every sweep point must match a direct library release
            // with the same seed.
            let mut rng = StdRng::seed_from_u64(3);
            let cfg = TopDownConfig::new(eps).with_method(LevelMethod::Cumulative { bound: 500 });
            let direct = to_csv(
                &ds.hierarchy,
                &top_down_release(&ds.hierarchy, &ds.data, &cfg, &mut rng).unwrap(),
            );
            assert_eq!(release.csv, direct, "eps={eps}");
            seen.push(eps);
        })
        .unwrap();
    assert_eq!(seen, epsilons);

    // Two references were taken; both must be dropped to free it.
    assert_eq!(client.unprepare(ds_handle).unwrap().unwrap(), 1);
    assert_eq!(client.unprepare(ds_handle).unwrap().unwrap(), 0);
    let err = client
        .submit_prepared(&params, ds_handle)
        .unwrap()
        .unwrap_err();
    assert!(err.contains("unknown dataset handle"), "{err}");

    client.quit().unwrap();
    handle.shutdown();
}

/// A sweep wider than the server's bounded job queue must still
/// complete: the client drains its oldest in-flight point when the
/// queue pushes back, preserving grid order.
#[test]
fn sweep_wider_than_the_queue_backpressures_and_completes() {
    let ds = dataset();
    let (hierarchy_csv, groups_csv, entities_csv) = tables(&ds);
    // One worker, one queue slot, no cache: at most two points can be
    // in flight, so a 5-point grid must exercise the retry path.
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_cache_capacity(0),
    );
    let handle = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let ds_handle = client
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();
    let params = SubmitParams {
        bound: 500,
        ..SubmitParams::default()
    };
    let epsilons = [0.5, 0.75, 1.0, 1.5, 2.0];
    let mut seen = Vec::new();
    client
        .sweep(&params, ds_handle, &epsilons, |eps, result| {
            result.expect("every point completes despite queue pressure");
            seen.push(eps);
        })
        .unwrap();
    assert_eq!(seen, epsilons, "results stream in grid order");
    client.quit().unwrap();
    handle.shutdown();
}

/// Unknown and evicted handles are distinguishable wire errors, and a
/// SUBMIT that carries both a handle and data sections is rejected.
#[test]
fn unknown_and_evicted_handles_over_loopback() {
    let ds = dataset();
    let (hierarchy_csv, groups_csv, entities_csv) = tables(&ds);
    // Capacity-1 registry: the second PREPARE evicts the first.
    let engine = Engine::start(EngineConfig::default().with_prepared_capacity(1));
    let handle = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let params = SubmitParams::default();

    // Never-prepared handle.
    let bogus: DatasetHandle = "ds-00000000000000000000000000000000".parse().unwrap();
    let err = client.submit_prepared(&params, bogus).unwrap().unwrap_err();
    assert!(err.contains("unknown dataset handle"), "{err}");
    let err = client.unprepare(bogus).unwrap().unwrap_err();
    assert!(err.contains("unknown dataset handle"), "{err}");

    // Prepare A, then B (a different dataset): A is evicted and says so.
    let a = client
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();
    let other = Dataset::generate(DatasetKind::Housing, 0.001, 6);
    let (h2, g2, e2) = tables(&other);
    let b = client.prepare(&h2, &g2, &e2).unwrap().unwrap();
    assert_ne!(a, b);
    let err = client.submit_prepared(&params, a).unwrap().unwrap_err();
    assert!(err.contains("evicted"), "{err}");
    assert!(client.submit_prepared(&params, b).unwrap().is_ok());

    // Handle + sections on one SUBMIT is malformed (but well-framed,
    // so the connection survives).
    let mut p = params.clone();
    p.handle = Some(b);
    let err = client
        .submit(&p, &hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap_err();
    assert!(err.contains("takes no data sections"), "{err}");
    assert!(client.ping().unwrap());

    // Malformed handle on the raw wire: the server rejects it with a
    // one-line ERR and the connection stays usable.
    {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        write!(stream, "UNPREPARE nope\nPING\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR"), "{line:?}");
        assert!(line.contains("malformed dataset handle"), "{line:?}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "PONG");
    }

    client.quit().unwrap();
    handle.shutdown();
}

/// Acceptance criterion: `DERIVE`/`APPEND` over loopback TCP. The
/// derived handle chains content fingerprints (equal to a cold
/// `PREPARE` of the post-delta tables), releases from it are
/// byte-identical to a direct library release of the post-delta
/// dataset, and `APPEND` drops one reference on the parent.
#[test]
fn derive_and_append_over_loopback() {
    let ds = dataset();
    let (hierarchy_csv, groups_csv, entities_csv) = tables(&ds);
    // A delta built from real data so it is valid at any scale: one
    // group resized, two added, one removed.
    let leaf = ds
        .hierarchy
        .leaves()
        .find(|&l| !ds.data.node(l).is_empty())
        .expect("generated data has an occupied leaf");
    let size = ds.data.node(leaf).max_size().unwrap();
    let region = ds.hierarchy.name(leaf).to_string();
    let delta = DatasetDelta {
        ops: vec![
            DeltaOp::Resize {
                region: region.clone(),
                old_size: size,
                new_size: size + 2,
                count: 1,
            },
            DeltaOp::Add {
                region: region.clone(),
                size: 1,
                count: 2,
            },
        ],
    };
    let post = ds.apply_delta(&delta).unwrap();

    let engine = Engine::start(EngineConfig::default().with_workers(2));
    let handle = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let parent = client
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();

    let derived = client.derive(parent, &delta).unwrap().unwrap();
    assert_ne!(derived, parent);

    // Fingerprint chaining: a cold PREPARE of the post-delta tables
    // must return the *same* handle as the server-side derivation.
    let (h2, g2, e2) = post.to_csv_tables();
    let cold = client.prepare(&h2, &g2, &e2).unwrap().unwrap();
    assert_eq!(cold, derived);

    // Releases from the derived handle equal a direct library release
    // of the post-delta dataset.
    let params = SubmitParams {
        epsilon: 1.25,
        method: "hc".into(),
        bound: 500,
        seed: 17,
        handle: None,
    };
    let id = client.submit_prepared(&params, derived).unwrap().unwrap();
    let release = client.wait(id).unwrap().unwrap();
    let direct = {
        let mut rng = StdRng::seed_from_u64(17);
        let cfg = TopDownConfig::new(1.25).with_method(LevelMethod::Cumulative { bound: 500 });
        to_csv(
            &post.hierarchy,
            &top_down_release(&post.hierarchy, &post.data, &cfg, &mut rng).unwrap(),
        )
    };
    assert_eq!(release.csv, direct);

    let stats = client.stats().unwrap();
    assert!(stats.contains("derived=1"), "{stats}");

    // APPEND: derives and drops one reference on the parent. The
    // parent held one reference, so it disappears.
    let append_delta = DatasetDelta {
        ops: vec![DeltaOp::Add {
            region,
            size: 2,
            count: 1,
        }],
    };
    let chained = client.append(derived, &append_delta).unwrap().unwrap();
    assert_ne!(chained, derived);
    // `derived` had two references (DERIVE + cold PREPARE); APPEND
    // dropped one, so it is still registered.
    assert_eq!(client.unprepare(derived).unwrap().unwrap(), 0);
    assert!(client.submit_prepared(&params, chained).unwrap().is_ok());

    // Bad deltas are one-line rejections that keep the connection:
    // removing groups that are not there, then a malformed parent
    // handle (its DELTA section must still be drained).
    let bad = DatasetDelta {
        ops: vec![DeltaOp::Remove {
            region: "nowhere".into(),
            size: 1,
            count: 1,
        }],
    };
    let err = client.derive(chained, &bad).unwrap().unwrap_err();
    assert!(err.contains("unknown region"), "{err}");
    // `derived` was fully unprepared above, so deriving from it is a
    // distinguishable unknown-handle rejection.
    let err = client.derive(derived, &append_delta).unwrap().unwrap_err();
    assert!(err.contains("unknown dataset handle"), "{err}");
    {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        write!(
            stream,
            "DERIVE nope\nDELTA 1\nop,region,size,new_size,count\nEND\nPING\n"
        )
        .unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("malformed dataset handle"), "{line:?}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "PONG");
    }
    assert!(client.ping().unwrap());

    client.quit().unwrap();
    handle.shutdown();
}

/// Acceptance smoke for the O(delta) win (the full measurement is the
/// `engine_derive` criterion bench, which shows ~29×): deriving a
/// 1%-changed dataset over the wire must beat a cold `PREPARE` of the
/// post-delta tables by a conservative 4× — the derive ships a
/// few-line delta and re-aggregates touched paths, the cold prepare
/// re-ships and re-parses one CSV row per entity.
#[test]
fn derive_beats_cold_prepare_by_a_wide_margin() {
    let ds = Dataset::generate(DatasetKind::Housing, 0.3, 6);
    let (hierarchy_csv, groups_csv, entities_csv) = ds.to_csv_tables();
    // Resize ~1% of all groups (same delta shape as the
    // `engine_derive` bench, via the shared builder).
    let delta = DatasetDelta::resize_sample(&ds, 100);
    let post = ds.apply_delta(&delta).unwrap();
    let (post_h, post_g, post_e) = post.to_csv_tables();

    let engine = Engine::start(EngineConfig::default().with_workers(2));
    let handle = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let parent = client
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();

    // Min-of-3 on both sides keeps the comparison robust to load
    // spikes on shared CI machines.
    let mut derive_time = Duration::MAX;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        client.derive(parent, &delta).unwrap().unwrap();
        derive_time = derive_time.min(t.elapsed());
    }
    let mut prepare_time = Duration::MAX;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        client.prepare(&post_h, &post_g, &post_e).unwrap().unwrap();
        prepare_time = prepare_time.min(t.elapsed());
    }
    assert!(
        derive_time * 4 < prepare_time,
        "derive {derive_time:?} must be at least 4x faster than cold prepare {prepare_time:?}"
    );
    client.quit().unwrap();
    handle.shutdown();
}

/// Satellite regression: an idle connection must not pin one of the
/// bounded connection slots forever. With a one-slot server and a
/// short read timeout, an idle client is disconnected and a
/// subsequent client's submit goes through.
#[test]
fn idle_client_no_longer_blocks_a_subsequent_submit() {
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    let ds = dataset();
    let (hierarchy_csv, groups_csv, entities_csv) = tables(&ds);
    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let handle = serve_with(
        Arc::new(engine),
        "127.0.0.1:0",
        ServeConfig::default()
            .with_max_connections(1)
            .with_read_timeout(Some(Duration::from_millis(150))),
    )
    .unwrap();

    // The idle client takes the only slot and sends nothing.
    let idle = TcpStream::connect(handle.addr()).unwrap();
    let mut idle_reader = BufReader::new(idle.try_clone().unwrap());

    // While the slot is held, new clients are turned away with the
    // busy line (this also proves the slot really was pinned).
    let mut probe = BufReader::new(TcpStream::connect(handle.addr()).unwrap());
    let mut line = String::new();
    probe.read_line(&mut line).unwrap();
    assert!(line.contains("server busy"), "{line:?}");

    // The idle client is disconnected once the read timeout fires...
    line.clear();
    idle_reader.read_line(&mut line).unwrap();
    assert!(line.contains("idle timeout"), "{line:?}");
    line.clear();
    assert_eq!(idle_reader.read_line(&mut line).unwrap(), 0, "closed");

    // ...freeing the slot: a real client now connects and submits.
    // The accept loop may need a beat to recycle the slot, so retry
    // connecting briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let submitted = loop {
        let mut client = Client::connect(handle.addr()).unwrap();
        if client.ping().unwrap_or(false) {
            let id = client
                .submit(
                    &SubmitParams {
                        bound: 500,
                        ..SubmitParams::default()
                    },
                    &hierarchy_csv,
                    &groups_csv,
                    &entities_csv,
                )
                .unwrap()
                .unwrap();
            let release = client.wait(id).unwrap().unwrap();
            client.quit().unwrap();
            break release;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed after the idle timeout"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(submitted.csv.starts_with("region,level,size,count"));
    handle.shutdown();
}

/// Satellite regression: unpreparing (or evicting) a handle while a
/// sweep streams against it must surface the distinguishable
/// re-prepare error on the remaining points — never a hang and never
/// a wrong result. In-flight points that were accepted before the
/// unprepare still complete (jobs hold their own `Arc`s).
#[test]
fn unprepare_and_eviction_mid_sweep_fail_cleanly() {
    // Slow-ish releases (large isotonic bound) so the single worker
    // is still busy when the third point arrives: the sweep hits the
    // bounded queue, drains its first point, and our callback pulls
    // the dataset out from under the rest of the grid.
    let ds = Dataset::generate(DatasetKind::Housing, 0.001, 5);
    let (hierarchy_csv, groups_csv, entities_csv) = ds.to_csv_tables();
    let params = SubmitParams {
        bound: 20_000,
        ..SubmitParams::default()
    };
    let epsilons = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0];

    // Scenario 1: UNPREPARE to zero references mid-sweep.
    {
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_cache_capacity(0),
        );
        let handle = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
        let mut sweeper = Client::connect(handle.addr()).unwrap();
        let mut saboteur = Client::connect(handle.addr()).unwrap();
        let ds_handle = sweeper
            .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
            .unwrap()
            .unwrap();
        let mut outcomes: Vec<(f64, Result<usize, String>)> = Vec::new();
        let mut sabotaged = false;
        sweeper
            .sweep(&params, ds_handle, &epsilons, |eps, result| {
                if !sabotaged {
                    sabotaged = true;
                    assert_eq!(saboteur.unprepare(ds_handle).unwrap().unwrap(), 0);
                }
                outcomes.push((eps, result.map(|r| r.csv.len())));
            })
            .unwrap();
        // Grid order and length are preserved even through failures.
        let seen: Vec<f64> = outcomes.iter().map(|(e, _)| *e).collect();
        assert_eq!(seen, epsilons);
        let failures: Vec<&String> = outcomes
            .iter()
            .filter_map(|(_, r)| r.as_ref().err())
            .collect();
        assert!(
            !failures.is_empty(),
            "queue pressure must have forced at least one post-unprepare submit"
        );
        for f in &failures {
            assert!(f.contains("unknown dataset handle"), "{f}");
        }
        // Points accepted before the unprepare still completed.
        assert!(outcomes.iter().any(|(_, r)| r.is_ok()));
        sweeper.quit().unwrap();
        saboteur.quit().unwrap();
        handle.shutdown();
    }

    // Scenario 2: LRU eviction mid-sweep (capacity-1 registry, the
    // saboteur prepares a different dataset) — the distinguishable
    // "re-prepare" error, not "unknown".
    {
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_cache_capacity(0)
                .with_prepared_capacity(1),
        );
        let handle = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
        let mut sweeper = Client::connect(handle.addr()).unwrap();
        let mut saboteur = Client::connect(handle.addr()).unwrap();
        let ds_handle = sweeper
            .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
            .unwrap()
            .unwrap();
        let other = Dataset::generate(DatasetKind::Housing, 0.001, 6);
        let (h2, g2, e2) = other.to_csv_tables();
        let mut failures: Vec<String> = Vec::new();
        let mut successes = 0usize;
        let mut sabotaged = false;
        sweeper
            .sweep(&params, ds_handle, &epsilons, |_, result| {
                if !sabotaged {
                    sabotaged = true;
                    saboteur.prepare(&h2, &g2, &e2).unwrap().unwrap();
                }
                match result {
                    Ok(_) => successes += 1,
                    Err(e) => failures.push(e),
                }
            })
            .unwrap();
        assert!(successes >= 1);
        assert!(!failures.is_empty());
        for f in &failures {
            assert!(
                f.contains("evicted") && f.contains("PREPARE it again"),
                "{f}"
            );
        }
        sweeper.quit().unwrap();
        saboteur.quit().unwrap();
        handle.shutdown();
    }
}

/// Malformed wire requests get one-line errors and keep the
/// connection usable.
#[test]
fn server_reports_errors_and_survives_them() {
    let engine = Engine::start(EngineConfig::default());
    let handle = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Unknown job.
    let err = client
        .fetch(hccount::engine::JobId(404))
        .unwrap()
        .unwrap_err();
    assert!(err.contains("unknown job"), "{err}");

    // Bad submission: groups referencing a region missing from the
    // hierarchy. The error names the bad region.
    let err = client
        .submit(
            &SubmitParams::default(),
            "region,parent\nroot,\nva,root\n",
            "g1,nowhere\n",
            "e1,g1\n",
        )
        .unwrap()
        .unwrap_err();
    assert!(err.contains("nowhere"), "{err}");

    // Bad parameter line: the client has already written the CSV
    // sections, so the server must drain them before replying — the
    // connection stays in sync for the next request.
    let err = client
        .submit(
            &SubmitParams {
                epsilon: 0.0,
                ..SubmitParams::default()
            },
            "region,parent\nroot,\nva,root\n",
            "g1,va\n",
            "e1,g1\n",
        )
        .unwrap()
        .unwrap_err();
    assert!(err.contains("positive and finite"), "{err}");

    // Connection still works afterwards.
    assert!(client.ping().unwrap());
    client.quit().unwrap();
    handle.shutdown();
}

/// Hand-rolled wire requests with broken section framing: a
/// well-framed unknown section is drained and rejected with the
/// connection kept; an unparseable header closes the connection
/// (stale payload must never be parsed as commands).
#[test]
fn raw_protocol_framing_errors() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let engine = Engine::start(EngineConfig::default());
    let handle = serve(Arc::new(engine), "127.0.0.1:0").unwrap();

    // Misspelled but well-framed section label: the one payload line
    // is drained, the submit is rejected, and PING still answers.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    write!(stream, "SUBMIT epsilon=1\nHIERACHY 1\nroot,\nEND\nPING\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR"), "{line:?}");
    assert!(line.contains("HIERACHY"), "{line:?}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "PONG");

    // Unparseable section length: framing is lost, so the server
    // reports once and closes instead of misreading the payload.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    write!(stream, "SUBMIT epsilon=1\nHIERARCHY x\nroot,\nEND\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR"), "{line:?}");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection closed");

    // Absurd declared section size: rejected before any payload is
    // buffered, and the connection is closed.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    write!(stream, "SUBMIT epsilon=1\nHIERARCHY 18446744073709551615\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("ERR") && line.contains("limit"),
        "{line:?}"
    );
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection closed");

    handle.shutdown();
}

/// The completion-watcher API behind the reactor's event-driven
/// result delivery: a watcher registered on a live job fires exactly
/// once with the terminal status, a watcher registered after the job
/// finished fires immediately, and an id the engine never saw is a
/// typed error.
#[test]
fn on_finish_fires_once_with_the_terminal_status() {
    let ds = dataset();
    let engine = Engine::start(EngineConfig::default().with_workers(1));
    let hierarchy = Arc::new(ds.hierarchy);
    let data = Arc::new(ds.data);

    // Deferred path: register while the job is (likely) still live.
    let id = engine
        .submit(ReleaseRequest::new(
            Arc::clone(&hierarchy),
            Arc::clone(&data),
            config(),
            11,
        ))
        .unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    engine
        .on_finish(id, move |job, status| tx.send((job, status)).unwrap())
        .unwrap();
    let (seen_id, status) = rx.recv_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(seen_id, id);
    let JobStatus::Done { result, .. } = status else {
        panic!("watcher saw non-terminal status");
    };
    let (direct, _) = engine.wait(id).unwrap();
    assert_eq!(result.csv, direct.csv);

    // Immediate path: the job above is terminal, so a fresh watcher
    // runs on the calling thread before `on_finish` returns.
    let (tx, rx) = std::sync::mpsc::channel();
    engine
        .on_finish(id, move |job, status| tx.send((job, status)).unwrap())
        .unwrap();
    let (seen_id, status) = rx
        .try_recv()
        .expect("terminal-job watcher must run synchronously");
    assert_eq!(seen_id, id);
    assert!(matches!(status, JobStatus::Done { .. }));

    // Unknown id: an engine that never issued the id reports it.
    let other = Engine::start(EngineConfig::default().with_workers(1));
    match other.on_finish(id, |_, _| {}) {
        Err(EngineError::UnknownJob(e)) => assert_eq!(e, id),
        other => panic!("expected UnknownJob, got {other:?}"),
    }
}
