//! End-to-end tests of the `hcc` command-line tool, driving the real
//! binary through generate → release → stats → evaluate.

use std::path::PathBuf;
use std::process::Command;

fn hcc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcc"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hcc_cli_tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_pipeline_generate_release_stats_evaluate() {
    let dir = tmp_dir("pipeline");
    let out = hcc()
        .args([
            "generate", "--kind", "taxi", "--scale", "0.002", "--seed", "3",
        ])
        .args(["--out-dir", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for f in ["hierarchy.csv", "groups.csv", "entities.csv"] {
        assert!(dir.join(f).exists(), "missing {f}");
    }

    let release = dir.join("release.csv");
    let out = hcc()
        .args(["release"])
        .args(["--hierarchy", dir.join("hierarchy.csv").to_str().unwrap()])
        .args(["--groups", dir.join("groups.csv").to_str().unwrap()])
        .args(["--entities", dir.join("entities.csv").to_str().unwrap()])
        .args(["--epsilon", "2.0", "--method", "hc", "--bound", "50000"])
        .args(["--out", release.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let content = std::fs::read_to_string(&release).unwrap();
    assert!(content.starts_with("region,level,size,count"));

    let out = hcc()
        .args(["stats"])
        .args(["--hierarchy", dir.join("hierarchy.csv").to_str().unwrap()])
        .args(["--release", release.to_str().unwrap()])
        .args(["--region", "manhattan"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("manhattan"), "stats output: {text}");

    // Self-evaluation: EMD of a release against itself is zero.
    let out = hcc()
        .args(["evaluate"])
        .args(["--hierarchy", dir.join("hierarchy.csv").to_str().unwrap()])
        .args(["--release", release.to_str().unwrap()])
        .args(["--truth", release.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for line in text.lines().skip(1) {
        let avg: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
        assert_eq!(avg, 0.0, "self-EMD must be zero: {line}");
    }
}

#[test]
fn deterministic_given_seed() {
    let dir = tmp_dir("determinism");
    for name in ["a.csv", "b.csv"] {
        let out = hcc()
            .args([
                "generate", "--kind", "housing", "--scale", "0.001", "--seed", "9",
            ])
            .args(["--out-dir", dir.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success());
        let out = hcc()
            .args(["release"])
            .args(["--hierarchy", dir.join("hierarchy.csv").to_str().unwrap()])
            .args(["--groups", dir.join("groups.csv").to_str().unwrap()])
            .args(["--entities", dir.join("entities.csv").to_str().unwrap()])
            .args(["--epsilon", "1.0", "--seed", "77"])
            .args(["--out", dir.join(name).to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let a = std::fs::read_to_string(dir.join("a.csv")).unwrap();
    let b = std::fs::read_to_string(dir.join("b.csv")).unwrap();
    assert_eq!(a, b, "same seed must give identical releases");
}

#[test]
fn helpful_errors() {
    // Unknown subcommand.
    let out = hcc().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    // Missing required option.
    let out = hcc().args(["release", "--epsilon", "1"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--hierarchy"));

    // Unknown dataset kind.
    let out = hcc()
        .args(["generate", "--kind", "nope", "--out-dir", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset kind"));

    // Help exits zero.
    let out = hcc().args(["help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}
