//! End-to-end tests of the `hcc` command-line tool, driving the real
//! binary through generate → release → stats → evaluate.

use std::path::PathBuf;
use std::process::Command;

fn hcc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hcc"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hcc_cli_tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_pipeline_generate_release_stats_evaluate() {
    let dir = tmp_dir("pipeline");
    let out = hcc()
        .args([
            "generate", "--kind", "taxi", "--scale", "0.002", "--seed", "3",
        ])
        .args(["--out-dir", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for f in ["hierarchy.csv", "groups.csv", "entities.csv"] {
        assert!(dir.join(f).exists(), "missing {f}");
    }

    let release = dir.join("release.csv");
    let out = hcc()
        .args(["release"])
        .args(["--hierarchy", dir.join("hierarchy.csv").to_str().unwrap()])
        .args(["--groups", dir.join("groups.csv").to_str().unwrap()])
        .args(["--entities", dir.join("entities.csv").to_str().unwrap()])
        .args(["--epsilon", "2.0", "--method", "hc", "--bound", "50000"])
        .args(["--out", release.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let content = std::fs::read_to_string(&release).unwrap();
    assert!(content.starts_with("region,level,size,count"));

    let out = hcc()
        .args(["stats"])
        .args(["--hierarchy", dir.join("hierarchy.csv").to_str().unwrap()])
        .args(["--release", release.to_str().unwrap()])
        .args(["--region", "manhattan"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("manhattan"), "stats output: {text}");

    // Self-evaluation: EMD of a release against itself is zero.
    let out = hcc()
        .args(["evaluate"])
        .args(["--hierarchy", dir.join("hierarchy.csv").to_str().unwrap()])
        .args(["--release", release.to_str().unwrap()])
        .args(["--truth", release.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for line in text.lines().skip(1) {
        let avg: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
        assert_eq!(avg, 0.0, "self-EMD must be zero: {line}");
    }
}

#[test]
fn deterministic_given_seed() {
    let dir = tmp_dir("determinism");
    for name in ["a.csv", "b.csv"] {
        let out = hcc()
            .args([
                "generate", "--kind", "housing", "--scale", "0.001", "--seed", "9",
            ])
            .args(["--out-dir", dir.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success());
        let out = hcc()
            .args(["release"])
            .args(["--hierarchy", dir.join("hierarchy.csv").to_str().unwrap()])
            .args(["--groups", dir.join("groups.csv").to_str().unwrap()])
            .args(["--entities", dir.join("entities.csv").to_str().unwrap()])
            .args(["--epsilon", "1.0", "--seed", "77"])
            .args(["--out", dir.join(name).to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let a = std::fs::read_to_string(dir.join("a.csv")).unwrap();
    let b = std::fs::read_to_string(dir.join("b.csv")).unwrap();
    assert_eq!(a, b, "same seed must give identical releases");
}

/// Boots `hcc serve` on an ephemeral loopback port, submits a release
/// with `hcc submit`, and checks the bytes match a direct
/// `hcc release` run with the same seed.
#[test]
fn serve_and_submit_roundtrip() {
    use std::io::BufRead;

    let dir = tmp_dir("serve");
    let out = hcc()
        .args([
            "generate", "--kind", "housing", "--scale", "0.001", "--seed", "4",
        ])
        .args(["--out-dir", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    let mut server = hcc()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // The first stdout line announces the actual address.
    let mut banner = String::new();
    std::io::BufReader::new(server.stdout.as_mut().unwrap())
        .read_line(&mut banner)
        .unwrap();
    let addr = banner
        .split_whitespace()
        .find(|w| w.starts_with("127.0.0.1:"))
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .to_string();

    let direct = dir.join("direct.csv");
    let served = dir.join("served.csv");
    let common = |cmd: &str| {
        let mut c = hcc();
        c.args([cmd]);
        c.args(["--hierarchy", dir.join("hierarchy.csv").to_str().unwrap()]);
        c.args(["--groups", dir.join("groups.csv").to_str().unwrap()]);
        c.args(["--entities", dir.join("entities.csv").to_str().unwrap()]);
        c.args(["--epsilon", "1.5", "--method", "hc", "--bound", "2000"]);
        c.args(["--seed", "11"]);
        c
    };
    let out = common("release")
        .args(["--out", direct.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = common("submit")
        .args(["--addr", &addr])
        .args(["--out", served.to_str().unwrap()])
        .output()
        .unwrap();
    let _ = server.kill();
    let _ = server.wait();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("rows"));
    assert_eq!(
        std::fs::read_to_string(&direct).unwrap(),
        std::fs::read_to_string(&served).unwrap(),
        "served release must be byte-identical to the direct one"
    );
}

/// Boots `hcc serve`, loads the tables once with `hcc prepare`, runs
/// an ε grid with `hcc sweep` over the handle, and checks every sweep
/// point is byte-identical to a direct `hcc release` with the same
/// seed and ε.
#[test]
fn prepare_and_sweep_roundtrip() {
    use std::io::BufRead;

    let dir = tmp_dir("sweep");
    let out = hcc()
        .args([
            "generate", "--kind", "housing", "--scale", "0.001", "--seed", "8",
        ])
        .args(["--out-dir", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    let mut server = hcc()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut banner = String::new();
    std::io::BufReader::new(server.stdout.as_mut().unwrap())
        .read_line(&mut banner)
        .unwrap();
    let addr = banner
        .split_whitespace()
        .find(|w| w.starts_with("127.0.0.1:"))
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .to_string();

    let tables = |c: &mut Command| {
        c.args(["--hierarchy", dir.join("hierarchy.csv").to_str().unwrap()]);
        c.args(["--groups", dir.join("groups.csv").to_str().unwrap()]);
        c.args(["--entities", dir.join("entities.csv").to_str().unwrap()]);
    };

    // PREPARE once; the handle is printed and content-addressed.
    let mut c = hcc();
    c.args(["prepare", "--addr", &addr]);
    tables(&mut c);
    let out = c.output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let handle = stdout
        .split_whitespace()
        .find(|w| w.starts_with("ds-"))
        .unwrap_or_else(|| panic!("no handle in {stdout:?}"))
        .to_string();

    // Sweep the ε grid over the handle on one connection.
    let sweep_dir = dir.join("sweeps");
    let out = hcc()
        .args(["sweep", "--addr", &addr, "--handle", &handle])
        .args(["--eps", "0.5,1.5", "--seed", "11", "--bound", "2000"])
        .args(["--out-dir", sweep_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("eps=0.5"), "{stdout}");
    assert!(stdout.contains("eps=1.5"), "{stdout}");

    // Every sweep point must equal a direct release at that ε.
    for eps in ["0.5", "1.5"] {
        let direct = dir.join(format!("direct-{eps}.csv"));
        let mut c = hcc();
        c.args(["release"]);
        tables(&mut c);
        let out = c
            .args(["--epsilon", eps, "--seed", "11", "--bound", "2000"])
            .args(["--out", direct.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            std::fs::read_to_string(sweep_dir.join(format!("release-eps-{eps}.csv"))).unwrap(),
            std::fs::read_to_string(&direct).unwrap(),
            "sweep at eps={eps} must be byte-identical to a direct release"
        );
    }

    // UNPREPARE drops the reference.
    let out = hcc()
        .args(["unprepare", "--addr", &addr, "--handle", &handle])
        .output()
        .unwrap();
    let _ = server.kill();
    let _ = server.wait();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 references remain"));
}

/// Boots `hcc serve`, prepares the tables, then moves the dataset
/// forward with `hcc derive`: the derived handle is printed, deriving
/// the same delta twice returns the same handle (fingerprint
/// chaining), and `--append` reports the dropped parent reference.
#[test]
fn derive_roundtrip_over_the_cli() {
    use std::io::BufRead;

    let dir = tmp_dir("derive");
    let out = hcc()
        .args([
            "generate", "--kind", "housing", "--scale", "0.001", "--seed", "9",
        ])
        .args(["--out-dir", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    let mut server = hcc()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut banner = String::new();
    std::io::BufReader::new(server.stdout.as_mut().unwrap())
        .read_line(&mut banner)
        .unwrap();
    let addr = banner
        .split_whitespace()
        .find(|w| w.starts_with("127.0.0.1:"))
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .to_string();

    let mut c = hcc();
    c.args(["prepare", "--addr", &addr]);
    c.args(["--hierarchy", dir.join("hierarchy.csv").to_str().unwrap()]);
    c.args(["--groups", dir.join("groups.csv").to_str().unwrap()]);
    c.args(["--entities", dir.join("entities.csv").to_str().unwrap()]);
    let out = c.output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let parent = stdout
        .split_whitespace()
        .find(|w| w.starts_with("ds-"))
        .unwrap_or_else(|| panic!("no handle in {stdout:?}"))
        .to_string();

    // A delta against a region that really exists (second line of the
    // groups table names one).
    let groups = std::fs::read_to_string(dir.join("groups.csv")).unwrap();
    let region = groups
        .lines()
        .nth(1)
        .and_then(|l| l.split(',').nth(1))
        .expect("groups table has a data row");
    let delta_path = dir.join("delta.csv");
    std::fs::write(
        &delta_path,
        format!("op,region,size,new_size,count\nadd,{region},4,,3\n"),
    )
    .unwrap();

    let derive = |extra: &[&str]| {
        let mut c = hcc();
        c.args(["derive", "--addr", &addr, "--handle", &parent]);
        c.args(["--delta", delta_path.to_str().unwrap()]);
        c.args(extra);
        let out = c.output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let first = derive(&[]);
    let derived = first
        .split_whitespace()
        .find(|w| w.starts_with("ds-"))
        .unwrap_or_else(|| panic!("no derived handle in {first:?}"))
        .to_string();
    assert_ne!(derived, parent);
    assert!(first.contains("1 delta op(s)"), "{first}");

    // Content addressing: the same delta derives the same handle.
    let second = derive(&[]);
    assert!(second.contains(&derived), "{second}");

    // APPEND drops one reference on the parent and says so.
    let appended = derive(&["--append"]);
    assert!(appended.contains("parent reference dropped"), "{appended}");

    let _ = server.kill();
    let _ = server.wait();
}

#[test]
fn helpful_errors() {
    // Unknown subcommand.
    let out = hcc().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    // Missing required option.
    let out = hcc().args(["release", "--epsilon", "1"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--hierarchy"));

    // Unknown dataset kind.
    let out = hcc()
        .args(["generate", "--kind", "nope", "--out-dir", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset kind"));

    // Help exits zero and documents the server mode and env knobs.
    let out = hcc().args(["help"]).output().unwrap();
    assert!(out.status.success());
    let help = String::from_utf8_lossy(&out.stdout).to_string();
    for needle in ["usage", "serve", "submit", "--threads", "HCC_THREADS"] {
        assert!(help.contains(needle), "help is missing {needle:?}");
    }

    // CSV errors name the offending file.
    let dir = tmp_dir("errors");
    std::fs::write(dir.join("hierarchy.csv"), "region,parent\nroot,\nva,root\n").unwrap();
    std::fs::write(dir.join("groups.csv"), "g1,atlantis\n").unwrap();
    std::fs::write(dir.join("entities.csv"), "e1,g1\n").unwrap();
    let bad_release = |groups: &str| {
        hcc()
            .args(["release"])
            .args(["--hierarchy", dir.join("hierarchy.csv").to_str().unwrap()])
            .args(["--groups", groups])
            .args(["--entities", dir.join("entities.csv").to_str().unwrap()])
            .args([
                "--epsilon",
                "1",
                "--out",
                dir.join("r.csv").to_str().unwrap(),
            ])
            .output()
            .unwrap()
    };
    // Parse failure: unknown region, attributed to groups.csv.
    let out = bad_release(dir.join("groups.csv").to_str().unwrap());
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("groups.csv"), "stderr: {stderr}");
    assert!(stderr.contains("atlantis"), "stderr: {stderr}");
    // IO failure: missing file, path included.
    let out = bad_release(dir.join("nope.csv").to_str().unwrap());
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("nope.csv"), "stderr: {stderr}");
}

/// Worker-count plumbing: `--threads`/`HCC_THREADS` size the one
/// engine-wide work-stealing pool. Zero is rejected everywhere, and
/// the removed per-job `--job-threads` knob fails loudly instead of
/// being silently ignored.
#[test]
fn thread_plumbing_rejects_zero_and_removed_job_threads() {
    // serve: a zero-sized pool can make no progress.
    let out = hcc()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("at least 1"), "stderr: {stderr}");

    // serve: same via the environment fallback.
    let out = hcc()
        .args(["serve", "--addr", "127.0.0.1:0"])
        .env("HCC_THREADS", "0")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("at least 1"), "stderr: {stderr}");

    // serve: --job-threads is gone (the engine runs ONE pool); the
    // error says what replaced it.
    let out = hcc()
        .args(["serve", "--addr", "127.0.0.1:0", "--job-threads", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(
        stderr.contains("--job-threads was removed") && stderr.contains("work-stealing"),
        "stderr: {stderr}"
    );

    // release: the estimator-parallelism knob rejects zero too (the
    // tables must parse first, so give it a minimal valid dataset).
    let dir = tmp_dir("zero_threads");
    std::fs::write(dir.join("hierarchy.csv"), "region,parent\nroot,\nva,root\n").unwrap();
    std::fs::write(dir.join("groups.csv"), "g1,va\n").unwrap();
    std::fs::write(dir.join("entities.csv"), "e1,g1\n").unwrap();
    let out = hcc()
        .args(["release"])
        .args(["--hierarchy", dir.join("hierarchy.csv").to_str().unwrap()])
        .args(["--groups", dir.join("groups.csv").to_str().unwrap()])
        .args(["--entities", dir.join("entities.csv").to_str().unwrap()])
        .args(["--epsilon", "1", "--threads", "0"])
        .args(["--out", dir.join("r.csv").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("at least 1"), "stderr: {stderr}");
}

/// `--threads` changes only the execution schedule, never the bytes.
#[test]
fn release_is_thread_count_invariant() {
    let dir = tmp_dir("threads");
    let out = hcc()
        .args([
            "generate", "--kind", "taxi", "--scale", "0.001", "--seed", "6",
        ])
        .args(["--out-dir", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let release = |name: &str, threads: &str| {
        let out = hcc()
            .args(["release"])
            .args(["--hierarchy", dir.join("hierarchy.csv").to_str().unwrap()])
            .args(["--groups", dir.join("groups.csv").to_str().unwrap()])
            .args(["--entities", dir.join("entities.csv").to_str().unwrap()])
            .args(["--epsilon", "1.0", "--seed", "3", "--threads", threads])
            .args(["--out", dir.join(name).to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(dir.join(name)).unwrap()
    };
    assert_eq!(release("t1.csv", "1"), release("t4.csv", "4"));
}
