//! End-to-end integration: generators → Algorithm 1 → desiderata,
//! across every dataset kind and method.

use hccount::consistency::{top_down_release, LevelMethod, MergeStrategy, TopDownConfig};
use hccount::core::emd;
use hccount::data::{Dataset, DatasetKind};
use hccount::hierarchy::Hierarchy;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SCALE: f64 = 0.01;

#[test]
fn all_datasets_all_methods_satisfy_desiderata() {
    let mut rng = StdRng::seed_from_u64(2018);
    for kind in DatasetKind::ALL {
        let ds = Dataset::generate(kind, SCALE, 11);
        for method in [
            LevelMethod::Cumulative { bound: 10_000 },
            LevelMethod::Unattributed,
        ] {
            let cfg = TopDownConfig::new(1.0).with_method(method);
            let rel = top_down_release(&ds.hierarchy, &ds.data, &cfg, &mut rng)
                .expect("generated hierarchies are uniform depth");
            // Consistency (children sum to parents) at every node.
            rel.assert_desiderata(&ds.hierarchy);
            // Public group counts preserved everywhere.
            for node in ds.hierarchy.iter() {
                assert_eq!(
                    rel.groups(node),
                    ds.data.groups(node),
                    "{kind:?}/{} changed G at {node}",
                    method.name()
                );
            }
        }
    }
}

#[test]
fn error_decreases_with_budget() {
    // More budget → (on average) less error; check with a 10× gap so
    // noise cannot plausibly invert the ordering.
    let ds = Dataset::generate(DatasetKind::RaceWhite, SCALE, 5);
    let root = Hierarchy::ROOT;
    let mut rng = StdRng::seed_from_u64(17);
    let avg_err = |eps: f64, rng: &mut StdRng| -> f64 {
        let cfg = TopDownConfig::new(eps).with_method(LevelMethod::Cumulative { bound: 10_000 });
        (0..3)
            .map(|_| {
                let rel = top_down_release(&ds.hierarchy, &ds.data, &cfg, rng).unwrap();
                emd(rel.node(root), ds.data.node(root)) as f64
            })
            .sum::<f64>()
            / 3.0
    };
    let low = avg_err(0.1, &mut rng);
    let high = avg_err(10.0, &mut rng);
    assert!(
        high < low,
        "ε=10 error ({high}) should beat ε=0.1 error ({low})"
    );
}

#[test]
fn weighted_merge_beats_plain_at_root_on_average() {
    // Figure 4's headline claim, as a statistical regression test.
    let ds = Dataset::generate(DatasetKind::RaceHawaiian, SCALE, 23);
    let mut rng = StdRng::seed_from_u64(29);
    let avg = |strategy: MergeStrategy, rng: &mut StdRng| -> f64 {
        let cfg = TopDownConfig::new(0.5)
            .with_method(LevelMethod::Cumulative { bound: 10_000 })
            .with_merge(strategy);
        (0..6)
            .map(|_| {
                let rel = top_down_release(&ds.hierarchy, &ds.data, &cfg, rng).unwrap();
                emd(rel.node(Hierarchy::ROOT), ds.data.node(Hierarchy::ROOT)) as f64
            })
            .sum::<f64>()
            / 6.0
    };
    let weighted = avg(MergeStrategy::WeightedAverage, &mut rng);
    let plain = avg(MergeStrategy::PlainAverage, &mut rng);
    assert!(
        weighted < plain,
        "weighted ({weighted}) should beat plain ({plain}) at the root"
    );
}

#[test]
fn released_output_is_deterministic_given_seed() {
    let ds = Dataset::generate(DatasetKind::Taxi, SCALE, 3);
    let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 10_000 });
    let run = || {
        let mut rng = StdRng::seed_from_u64(555);
        top_down_release(&ds.hierarchy, &ds.data, &cfg, &mut rng).unwrap()
    };
    let a = run();
    let b = run();
    for node in ds.hierarchy.iter() {
        assert_eq!(a.node(node), b.node(node));
    }
}

#[test]
fn mixed_methods_per_level_work_on_generated_data() {
    let ds = Dataset::generate(DatasetKind::Housing, SCALE, 31);
    let mut rng = StdRng::seed_from_u64(37);
    let cfg = TopDownConfig::new(1.5).with_level_methods(vec![
        LevelMethod::Unattributed,
        LevelMethod::Cumulative { bound: 10_000 },
        LevelMethod::CumulativeL2 { bound: 10_000 },
    ]);
    let rel = top_down_release(&ds.hierarchy, &ds.data, &cfg, &mut rng).unwrap();
    rel.assert_desiderata(&ds.hierarchy);
}
