//! Integration tests of the engine telemetry subsystem: Prometheus
//! exposition shape, the METRICS/TRACE wire verbs over loopback, the
//! span recorder's wall-clock coverage, and snapshot consistency
//! under concurrent readers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hccount::consistency::{LevelMethod, TopDownConfig};
use hccount::data::{Dataset, DatasetKind};
use hccount::engine::{
    chrome_trace_json, protocol::SubmitParams, serve, Client, Engine, EngineConfig, ReleaseRequest,
    SpanKind,
};

fn dataset() -> Dataset {
    Dataset::generate(DatasetKind::Housing, 0.001, 5)
}

fn config() -> TopDownConfig {
    TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 500 })
}

fn request(ds: &Dataset, seed: u64) -> ReleaseRequest {
    ReleaseRequest::new(
        Arc::new(ds.hierarchy.clone()),
        Arc::new(ds.data.clone()),
        config(),
        seed,
    )
}

/// Runs `jobs` fresh-seeded releases to completion on `engine`.
fn run_jobs(engine: &Engine, ds: &Dataset, jobs: u64) {
    let ids: Vec<_> = (0..jobs)
        .map(|i| engine.submit(request(ds, 100 + i)).unwrap())
        .collect();
    for id in ids {
        engine.wait(id).unwrap();
    }
}

/// Golden-text shape of the exposition: every series the docs promise
/// is present with `# HELP`/`# TYPE` headers, every sample line
/// parses, histogram buckets are cumulative (monotone, `+Inf` equal
/// to `_count`), and derived quantiles are ordered p50 ≤ p95 ≤ p99.
#[test]
fn metrics_exposition_is_well_formed() {
    let ds = dataset();
    let engine = Engine::start(EngineConfig::default().with_workers(2));
    run_jobs(&engine, &ds, 3);
    let text = engine.telemetry().to_prometheus();

    for name in [
        "hcc_jobs_submitted_total",
        "hcc_jobs_completed_total",
        "hcc_jobs_failed_total",
        "hcc_cache_hits_total",
        "hcc_cache_misses_total",
        "hcc_datasets_prepared_total",
        "hcc_datasets_derived_total",
        "hcc_trace_spans_dropped_total",
        "hcc_workers",
        "hcc_queue_depth",
        "hcc_prepared_datasets",
        "hcc_uptime_seconds",
        "hcc_tasks_executed_total",
        "hcc_tasks_stolen_total",
        "hcc_steal_attempts_total",
        "hcc_steal_successes_total",
        "hcc_steal_failed_probes_total",
        "hcc_worker_idle_seconds_total",
        "hcc_queue_wait_seconds",
        "hcc_expand_seconds",
        "hcc_gate_wait_seconds",
        "hcc_task_seconds",
        "hcc_finalize_seconds",
        "hcc_worker_idle_seconds",
        "hcc_estimate_seconds",
    ] {
        assert!(
            text.contains(&format!("# HELP {name} ")),
            "missing HELP for {name}"
        );
        assert!(
            text.contains(&format!("# TYPE {name} ")),
            "missing TYPE for {name}"
        );
    }

    // Every sample line is `name[{labels}] value` with a numeric value.
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(
            !series.is_empty() && series.starts_with("hcc_"),
            "unexpected series {line:?}"
        );
        value.parse::<f64>().unwrap_or_else(|_| {
            panic!("value of {series} is not numeric: {value:?}");
        });
    }

    // Histogram buckets are cumulative and capped by their _count.
    for series in ["hcc_task_seconds", "hcc_queue_wait_seconds"] {
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with(&format!("{series}_bucket{{le=")))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(!buckets.is_empty(), "{series} has no bucket lines");
        assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "{series} buckets must be cumulative: {buckets:?}"
        );
        let count: u64 = text
            .lines()
            .find(|l| l.starts_with(&format!("{series}_count ")))
            .and_then(|l| l.rsplit_once(' ')?.1.parse().ok())
            .expect("histogram _count line");
        assert_eq!(
            *buckets.last().unwrap(),
            count,
            "{series}: +Inf bucket must equal _count"
        );
        assert!(count > 0, "{series} must have recorded samples");

        let q: Vec<f64> = ["0.5", "0.95", "0.99"]
            .iter()
            .map(|qs| {
                text.lines()
                    .find(|l| l.starts_with(&format!("{series}_quantile{{q=\"{qs}\"}}")))
                    .and_then(|l| l.rsplit_once(' ')?.1.parse().ok())
                    .expect("quantile line")
            })
            .collect();
        assert!(
            q[0] <= q[1] && q[1] <= q[2],
            "{series} quantiles must be ordered: {q:?}"
        );
    }

    // Estimation time is split by level method; this workload is all
    // Hc, so the hc label must carry every estimate sample.
    let hc_count: u64 = text
        .lines()
        .find(|l| l.starts_with("hcc_estimate_seconds_count{method=\"hc\"}"))
        .and_then(|l| l.rsplit_once(' ')?.1.parse().ok())
        .expect("per-method estimate count");
    assert!(hc_count > 0, "Hc workload must record hc-labelled samples");
}

/// The METRICS and TRACE verbs over a real loopback connection: the
/// client fetches the exposition with live job counters, and TRACE on
/// a recorder-off server returns a valid empty dump.
#[test]
fn metrics_and_trace_over_loopback() {
    let ds = dataset();
    let (hierarchy_csv, groups_csv, entities_csv) = ds.to_csv_tables();
    let engine = Engine::start(EngineConfig::default().with_workers(2));
    let handle = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let params = SubmitParams {
        epsilon: 1.0,
        method: "hc".into(),
        bound: 500,
        seed: 7,
        handle: None,
    };
    let id = client
        .submit(&params, &hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .expect("server accepts the submission");
    client.wait(id).unwrap().expect("job completes");

    let text = client.metrics().unwrap();
    assert!(
        text.contains("hcc_jobs_submitted_total 1\n"),
        "exposition must carry the live submit counter:\n{text}"
    );
    assert!(
        text.contains("hcc_jobs_completed_total 1\n"),
        "exposition must carry the live completion counter"
    );
    assert!(text.contains("hcc_workers 2\n"));

    // Tracing is off by default: the dump is empty, not an error.
    let spans = client.trace().unwrap();
    assert!(spans.is_empty(), "recorder off ⇒ no spans, got {spans:?}");
    assert!(client.ping().unwrap(), "connection survives both verbs");
}

/// Acceptance criterion: an 8-job batch at 4 workers with the span
/// recorder on yields a Chrome-trace dump whose spans account for
/// ≥ 90% of each worker's busy window, with no overlapping spans on
/// any worker lane.
#[test]
fn trace_spans_cover_at_least_90_percent_of_worker_wallclock() {
    let ds = dataset();
    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(4)
            .with_cache_capacity(0)
            .with_trace_capacity(1 << 16),
    );
    run_jobs(&engine, &ds, 8);

    let spans = engine.take_trace();
    assert!(!spans.is_empty(), "recorder on ⇒ spans");
    for w in 0..4u32 {
        let mut lane: Vec<_> = spans.iter().filter(|s| s.worker == w).collect();
        assert!(!lane.is_empty(), "worker {w} recorded no spans");
        lane.sort_by_key(|s| s.start_ns);
        for pair in lane.windows(2) {
            assert!(
                pair[0].end_ns <= pair[1].start_ns,
                "worker {w}: overlapping spans {:?} and {:?}",
                pair[0],
                pair[1]
            );
        }
        // The busy window ends at the last span: the final park is
        // still open when we drain, so it has no end to account for.
        let window = lane.last().unwrap().end_ns - lane.first().unwrap().start_ns;
        let covered: u64 = lane.iter().map(|s| s.end_ns - s.start_ns).sum();
        assert!(
            covered * 10 >= window * 9,
            "worker {w}: spans cover {covered} of {window} ns (< 90%)"
        );
        // Work spans, not idle, must dominate a saturated batch.
        assert!(
            lane.iter().any(|s| s.kind == SpanKind::Task),
            "worker {w} ran no task spans"
        );
    }

    // The dump renders as loadable Chrome-trace JSON.
    let json = chrome_trace_json(&spans);
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    assert!(json.contains("\"name\":\"worker-3\""), "4 worker lanes");
    assert_eq!(
        json.matches("\"ph\":\"X\"").count(),
        spans.len(),
        "one complete event per span"
    );

    // A second drain holds no *work* spans: TRACE is consume-once.
    // (Idle workers waking between the drains may legitimately record
    // new sched/idle spans, so only the task-lifecycle kinds must be
    // gone.)
    assert!(engine
        .take_trace()
        .iter()
        .all(|s| matches!(s.kind, SpanKind::Sched | SpanKind::Idle)));
}

/// `Engine::stats` must never expose an in-flight job as both
/// unsubmitted and completed: concurrent readers hammering the
/// snapshot while 32 jobs run always observe
/// `completed + failed ≤ submitted` and
/// `cache_hits + cache_misses ≤ submitted`, with `submitted`
/// monotonically non-decreasing per reader.
#[test]
fn stats_snapshot_stays_consistent_under_concurrent_load() {
    let ds = dataset();
    let engine = Engine::start(EngineConfig::default().with_workers(4));
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                let mut last_submitted = 0;
                while !done.load(Ordering::Relaxed) {
                    let s = engine.stats();
                    assert!(
                        s.completed + s.failed <= s.submitted,
                        "snapshot tore: {} completed + {} failed > {} submitted",
                        s.completed,
                        s.failed,
                        s.submitted
                    );
                    assert!(
                        s.cache_hits + s.cache_misses <= s.submitted,
                        "snapshot tore: {} hits + {} misses > {} submitted",
                        s.cache_hits,
                        s.cache_misses,
                        s.submitted
                    );
                    assert!(
                        s.submitted >= last_submitted,
                        "submitted went backwards: {} < {last_submitted}",
                        s.submitted
                    );
                    last_submitted = s.submitted;
                }
            });
        }
        // First wave computes 12 fresh seeds (reads race in-flight
        // completions); the second wave repeats them, so every repeat
        // takes the cache-hit admission path — submitted, completed
        // and cache_hits bumped in one critical section.
        let fresh: Vec<_> = (0..12u64)
            .map(|i| engine.submit(request(&ds, 100 + i)).unwrap())
            .collect();
        for id in fresh {
            engine.wait(id).unwrap();
        }
        let repeats: Vec<_> = (0..20u64)
            .map(|i| engine.submit(request(&ds, 100 + i % 12)).unwrap())
            .collect();
        for id in repeats {
            engine.wait(id).unwrap();
        }
        done.store(true, Ordering::Relaxed);
    });

    let s = engine.stats();
    assert_eq!(s.submitted, 32);
    assert_eq!((s.completed, s.failed), (32, 0));
    assert_eq!((s.cache_hits, s.cache_misses), (20, 12));
}
