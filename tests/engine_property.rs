//! Property test: across random hierarchy shapes, leaf data, seeds,
//! and level methods, the parallel engine release is bit-identical to
//! a direct single-threaded `top_down_release` with the same seed.

use std::sync::Arc;

use hccount::consistency::{to_csv, top_down_release, LevelMethod, TopDownConfig};
use hccount::core::CountOfCounts;
use hccount::engine::{parallel_release, Engine, EngineConfig, ReleaseRequest};
use hccount::hierarchy::{Hierarchy, HierarchyBuilder, NodeId};
use hccount::prelude::HierarchicalCounts;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a uniform-depth hierarchy with the given per-level fan-outs
/// and recycles the generated group-size multisets across the leaves.
fn build_case(fanouts: &[usize], leaf_sizes: &[Vec<u64>]) -> (Hierarchy, HierarchicalCounts) {
    let mut b = HierarchyBuilder::new("root");
    let mut frontier = vec![Hierarchy::ROOT];
    for &f in fanouts {
        let mut next = Vec::new();
        for &node in &frontier {
            for i in 0..f {
                next.push(b.add_child(node, format!("{node}-{i}")));
            }
        }
        frontier = next;
    }
    let h = b.build();
    let leaves: Vec<(NodeId, CountOfCounts)> = frontier
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let sizes = leaf_sizes
                .get(i % leaf_sizes.len().max(1))
                .cloned()
                .unwrap_or_default();
            (n, CountOfCounts::from_group_sizes(sizes))
        })
        .collect();
    let data = HierarchicalCounts::from_leaves(&h, leaves).expect("uniform by construction");
    (h, data)
}

fn method_for(selector: u8) -> LevelMethod {
    match selector % 5 {
        0 => LevelMethod::Cumulative { bound: 64 },
        1 => LevelMethod::CumulativeL2 { bound: 64 },
        2 => LevelMethod::Unattributed,
        3 => LevelMethod::Naive { bound: 64 },
        _ => LevelMethod::Adaptive { bound: 64 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engine_release_bit_identical_to_direct_top_down_release(
        fanouts in prop::collection::vec(1usize..4, 1..4),
        leaf_sizes in prop::collection::vec(
            prop::collection::vec(0u64..40, 0..10), 1..5),
        seed in any::<u64>(),
        eps in 0.05f64..5.0,
        selector in any::<u8>(),
        workers in 2usize..5,
    ) {
        let (h, data) = build_case(&fanouts, &leaf_sizes);
        let cfg = TopDownConfig::new(eps).with_method(method_for(selector));

        let direct = {
            let mut rng = StdRng::seed_from_u64(seed);
            to_csv(&h, &top_down_release(&h, &data, &cfg, &mut rng).unwrap())
        };

        // The executor alone, at several thread counts.
        for threads in [1, workers] {
            let parallel = parallel_release(&h, &data, &cfg, seed, threads).unwrap();
            prop_assert_eq!(
                to_csv(&h, &parallel),
                direct.clone(),
                "threads={} method={}",
                threads,
                cfg.method_for_level(0).name()
            );
        }

        // The full engine (queue + pool + cache) on top.
        let engine = Engine::start(EngineConfig::default().with_workers(workers));
        let id = engine
            .submit(ReleaseRequest::new(
                Arc::new(h),
                Arc::new(data),
                cfg,
                seed,
            ))
            .unwrap();
        let (result, _) = engine.wait(id).unwrap();
        prop_assert_eq!(&result.csv, &direct);
    }
}
