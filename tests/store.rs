//! Crash-recovery acceptance suite for the durable store
//! (`hccount::store`), exercising the two invariants `docs/store.md`
//! promises:
//!
//! 1. **Any WAL prefix replays to a consistent state.** The WAL is the
//!    unit of durability; a crash can leave *any* byte prefix of it on
//!    disk. Replaying a prefix must land exactly on the state after
//!    some acknowledged mutation — never a partial dataset record,
//!    never a ledger entry that no acknowledged charge produced. The
//!    property test drives a random mutation sequence, snapshots the
//!    store's state at every acknowledged record boundary, then
//!    reopens arbitrary byte prefixes of the WAL and checks each one
//!    recovers a snapshot (with any torn tail truncated).
//!
//! 2. **The budget ledger never under-counts.** Fixtures inject torn
//!    writes, short writes, and armed crash points at every
//!    durability-relevant instant (via [`FailPolicy`]); in every case
//!    the reopened store holds all acknowledged datasets
//!    byte-identically and a recovered epsilon total at least the
//!    acknowledged total (charge-then-release: the one in-flight
//!    charge may over-count, nothing may under-count).

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use hccount::store::{DatasetRecord, FailPolicy, FaultKind, Store, StoreError};
use proptest::prelude::*;

/// Fresh scratch directory unique to this test run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hcc-store-it-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A small but non-trivial dataset record; `salt` varies the
/// histogram so distinct puts write distinct bytes.
fn record(handle: u128, salt: u64) -> DatasetRecord {
    DatasetRecord {
        handle,
        names: vec!["root".to_string(), "a".to_string(), "b".to_string()],
        parents: vec![u64::MAX, 0, 0],
        histograms: vec![
            vec![(1, 5 + salt), (3, 2)],
            vec![(1, 5 + salt)],
            vec![(3, 2)],
        ],
        refs: 1,
    }
}

fn handle_for(id: u8) -> u128 {
    0xABC0_0000 + u128::from(id)
}

/// The store's sidecar WAL path for a snapshot path.
fn wal_path_of(store_path: &std::path::Path) -> PathBuf {
    let mut os = store_path.to_path_buf().into_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

/// One scripted mutation, decoded from a generated `(kind, id, arg)`
/// triple (the vendored proptest shim has no `prop_map`).
#[derive(Clone, Copy, Debug)]
enum Op {
    Put { id: u8, salt: u64 },
    Refs { id: u8, refs: u64 },
    Charge { id: u8, epsilon: f64 },
}

fn decode_op((kind, id, arg): (u8, u8, u8)) -> Op {
    match kind % 3 {
        0 => Op::Put {
            id,
            salt: u64::from(arg),
        },
        1 => Op::Refs {
            id,
            refs: u64::from(arg % 3),
        },
        // Positive multiples of 1/8 so ledger sums are exact.
        _ => Op::Charge {
            id,
            epsilon: f64::from(arg % 16 + 1) / 8.0,
        },
    }
}

fn apply(store: &mut Store, op: Op) -> Result<(), StoreError> {
    match op {
        Op::Put { id, salt } => store.put_dataset(&record(handle_for(id), salt)),
        Op::Refs { id, refs } => store.set_refs(handle_for(id), refs),
        Op::Charge { id, epsilon } => store.charge(handle_for(id), epsilon).map(|_| ()),
    }
}

/// Snapshot of the store's logical state at one acknowledged record
/// boundary.
#[derive(Clone, Debug, PartialEq)]
struct State {
    datasets: BTreeMap<u128, DatasetRecord>,
    ledger: BTreeMap<u128, f64>,
}

fn state_of(store: &Store) -> State {
    State {
        datasets: store.datasets().clone(),
        ledger: store.ledger().clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every byte prefix of the WAL replays to exactly the state after
    /// some acknowledged mutation: no partial dataset handle, and a
    /// ledger that grows monotonically with the prefix length.
    #[test]
    fn any_wal_prefix_replays_to_an_acknowledged_state(
        raw in prop::collection::vec((0u8..3, 0u8..4, 0u8..=255u8), 1..14),
        probes in prop::collection::vec(0u32..4096, 4..10),
    ) {
        let dir = scratch("prefix");
        let path = dir.join("s.hcc");

        // Drive the sequence, snapshotting after every acknowledged
        // record. `bounds[k]` is the WAL length after the k-th
        // mutation; `states[k]` the state it acknowledged.
        let mut store = Store::open(&path).expect("open fresh store");
        store.set_checkpoint_bytes(u64::MAX); // keep everything in the WAL
        let mut bounds = vec![0u64];
        let mut states = vec![state_of(&store)];
        for &triple in &raw {
            apply(&mut store, decode_op(triple)).expect("clean mutation");
            bounds.push(store.wal_len());
            states.push(state_of(&store));
        }
        let final_state = states.last().expect("at least the empty state").clone();
        drop(store);

        let wal = fs::read(wal_path_of(&path)).expect("read WAL");
        prop_assert_eq!(wal.len() as u64, *bounds.last().expect("nonempty bounds"));

        // Probe every record boundary, its neighbourhood (to catch
        // torn tails), and a handful of generated offsets.
        let mut lengths = std::collections::BTreeSet::new();
        lengths.insert(0usize);
        lengths.insert(wal.len());
        for &b in &bounds {
            for d in [-2i64, -1, 0, 1, 2, 11] {
                let l = i64::try_from(b).expect("small WAL") + d;
                if (0..=i64::try_from(wal.len()).expect("small WAL")).contains(&l) {
                    lengths.insert(usize::try_from(l).expect("in range"));
                }
            }
        }
        for &p in &probes {
            lengths.insert((p as usize) % (wal.len() + 1));
        }

        let replay_dir = dir.join("replay");
        fs::create_dir_all(&replay_dir).expect("replay dir");
        let replay_path = replay_dir.join("t.hcc");
        let mut prev_total = -1.0f64;
        for &len in &lengths {
            fs::write(wal_path_of(&replay_path), &wal[..len]).expect("write prefix");
            let recovered = Store::open(&replay_path).expect("prefix must replay cleanly");

            // The recovered state is exactly the acknowledged state at
            // the last record boundary the prefix fully contains.
            let k = bounds.iter().filter(|&&b| b <= len as u64).count() - 1;
            let got = state_of(&recovered);
            prop_assert_eq!(
                &got, &states[k],
                "prefix of {} bytes must recover state {}", len, k
            );

            // No partial handle: every recovered dataset is byte-
            // identical to a version some acknowledged state held
            // (re-puts may legitimately recover an earlier version).
            for (h, rec) in got.datasets {
                prop_assert!(
                    states
                        .iter()
                        .any(|s| s.datasets.get(&h).is_some_and(|a| a == &rec)),
                    "recovered handle {:#x} matches no acknowledged version",
                    h
                );
            }

            // Ledger monotone in the prefix length, bounded by the
            // final acknowledged totals.
            let total = recovered.total_spent();
            prop_assert!(total >= prev_total, "ledger shrank as the prefix grew");
            prev_total = total;
            for (h, eps) in recovered.ledger() {
                prop_assert!(eps <= final_state.ledger.get(h).unwrap_or(&0.0));
            }
        }

        let _ = fs::remove_dir_all(&dir);
    }
}

/// Shared fixture: acknowledge two mutations cleanly, inject an I/O
/// fault on a later one, and prove the reopened store holds exactly
/// the acknowledged state.
fn io_fault_fixture(kind: FaultKind, tag: &str) {
    let dir = scratch(tag);
    let path = dir.join("s.hcc");
    let h = handle_for(1);

    // Learn which counted I/O op the third mutation's WAL write is,
    // by running the same script cleanly (the policy is deterministic,
    // so the op index replays exactly).
    let mut probe = Store::open_with(&path, FailPolicy::new()).expect("open probe store");
    probe.put_dataset(&record(h, 7)).expect("clean put");
    probe.charge(h, 1.0).expect("clean charge");
    let fault_op = probe.policy_mut().ops();
    drop(probe);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("recreate scratch dir");

    let policy = FailPolicy::new().with_fault_at(fault_op, kind);
    let mut store = Store::open_with(&path, policy).expect("open faulted store");
    store.put_dataset(&record(h, 7)).expect("acknowledged put");
    let acked_spent = store.charge(h, 1.0).expect("acknowledged charge");
    assert_eq!(acked_spent, 1.0);
    let acked = state_of(&store);

    // The faulted charge fails and wedges the store; the partial
    // record is on disk, but it was never acknowledged.
    match store.charge(h, 0.5) {
        Err(StoreError::Injected(point)) => {
            assert!(point.starts_with("io."), "unexpected fault point {point}")
        }
        other => panic!("expected an injected fault, got {other:?}"),
    }
    match store.put_dataset(&record(handle_for(2), 1)) {
        Err(StoreError::Wedged) => {}
        other => panic!("wedged store must refuse mutations, got {other:?}"),
    }
    // Reads still serve the acknowledged state while wedged.
    assert_eq!(store.spent(h), 1.0);
    drop(store);

    // The torn/short tail is on disk and must be truncated on reopen.
    let recovered = Store::open(&path).expect("recovery after fault");
    assert_eq!(state_of(&recovered), acked);
    assert_eq!(recovered.spent(h), acked_spent);

    // And the recovered store is fully writable again.
    let mut recovered = recovered;
    assert_eq!(
        recovered.charge(h, 0.25).expect("post-recovery charge"),
        1.25
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_write_is_dropped_on_reopen() {
    io_fault_fixture(FaultKind::Torn, "torn");
}

#[test]
fn short_wal_write_is_dropped_on_reopen() {
    io_fault_fixture(FaultKind::Short, "short");
}

#[test]
fn failed_wal_write_loses_nothing_acknowledged() {
    io_fault_fixture(FaultKind::Fail, "fail");
}

/// Crash at every named durability point in a scripted run; in every
/// case the reopened store holds all acknowledged datasets
/// byte-identically and the ledger never under-counts.
#[test]
fn every_crash_point_recovers_without_undercounting() {
    const POINTS: [&str; 13] = [
        "append.put",
        "written.put",
        "synced.put",
        "append.refs",
        "written.refs",
        "synced.refs",
        "append.charge",
        "written.charge",
        "synced.charge",
        "checkpoint.begin",
        "checkpoint.tmp",
        "checkpoint.rename",
        "checkpoint.done",
    ];
    let ha = handle_for(1);
    let hb = handle_for(2);

    for point in POINTS {
        let dir = scratch(&format!("crash-{}", point.replace('.', "-")));
        let path = dir.join("s.hcc");
        let policy = FailPolicy::new().with_crash_point(point);
        let mut store = Store::open_with(&path, policy).expect("open store");
        store.set_checkpoint_bytes(u64::MAX);

        // The script touches every record type and a checkpoint, so
        // each armed point fires mid-run. Track what was acknowledged
        // and what was in flight when the crash hit.
        enum Step {
            Put(u128, u64),
            Refs(u128, u64),
            Charge(u128, f64),
            Checkpoint,
        }
        let script = [
            Step::Put(ha, 3),
            Step::Charge(ha, 1.0),
            Step::Put(hb, 9),
            Step::Refs(hb, 2),
            Step::Charge(hb, 0.5),
            Step::Checkpoint,
            Step::Charge(ha, 0.25),
        ];

        let mut acked = state_of(&store);
        let mut inflight_charge: BTreeMap<u128, f64> = BTreeMap::new();
        let mut inflight_put: Option<u128> = None;
        let mut inflight_refs: Option<(u128, u64)> = None;
        let mut crashed = false;
        for step in script {
            let outcome = match &step {
                Step::Put(h, salt) => store.put_dataset(&record(*h, *salt)),
                Step::Refs(h, refs) => store.set_refs(*h, *refs),
                Step::Charge(h, eps) => store.charge(*h, *eps).map(|_| ()),
                Step::Checkpoint => store.checkpoint(),
            };
            match outcome {
                Ok(()) => acked = state_of(&store),
                Err(StoreError::Injected(p)) => {
                    assert_eq!(p, point, "a different crash point fired");
                    match step {
                        Step::Put(h, _) => inflight_put = Some(h),
                        Step::Refs(h, refs) => inflight_refs = Some((h, refs)),
                        Step::Charge(h, eps) => {
                            inflight_charge.insert(h, eps);
                        }
                        Step::Checkpoint => {} // no logical state in flight
                    }
                    crashed = true;
                    break;
                }
                Err(other) => panic!("{point}: unexpected error {other:?}"),
            }
        }
        assert!(crashed, "crash point {point} never fired");
        match store.charge(ha, 0.125) {
            Err(StoreError::Wedged) => {}
            other => panic!("{point}: wedged store must refuse mutations, got {other:?}"),
        }
        drop(store);

        let recovered = Store::open(&path).unwrap_or_else(|e| panic!("{point}: recovery: {e}"));

        // Every acknowledged dataset is present, byte-identical; the
        // only tolerated drift is the single in-flight mutation, whose
        // synced-but-unacknowledged record may have survived.
        for (h, rec) in &acked.datasets {
            let got = recovered
                .datasets()
                .get(h)
                .unwrap_or_else(|| panic!("{point}: acknowledged handle {h:#x} lost"));
            assert_eq!(got.names, rec.names, "{point}");
            assert_eq!(got.parents, rec.parents, "{point}");
            assert_eq!(got.histograms, rec.histograms, "{point}");
            let refs_ok = got.refs == rec.refs || inflight_refs == Some((*h, got.refs));
            assert!(refs_ok, "{point}: refs {} not acknowledged", got.refs);
        }
        for h in recovered.datasets().keys() {
            assert!(
                acked.datasets.contains_key(h) || inflight_put == Some(*h),
                "{point}: recovered handle {h:#x} was never put"
            );
        }

        // Ledger bounds: never below the acknowledged total, never
        // above it by more than the one in-flight charge.
        for (h, recovered_eps) in recovered.ledger() {
            let acked_eps = acked.ledger.get(h).copied().unwrap_or(0.0);
            let slack = inflight_charge.get(h).copied().unwrap_or(0.0);
            assert!(
                *recovered_eps >= acked_eps,
                "{point}: ledger under-counted handle {h:#x}: {recovered_eps} < {acked_eps}"
            );
            assert!(
                *recovered_eps <= acked_eps + slack,
                "{point}: ledger over-counted past the in-flight charge"
            );
        }
        for (h, acked_eps) in &acked.ledger {
            assert!(
                recovered.spent(*h) >= *acked_eps,
                "{point}: acknowledged charge on {h:#x} lost"
            );
        }

        // Recovery is complete: the store accepts mutations again.
        let mut recovered = recovered;
        recovered
            .charge(ha, 0.125)
            .unwrap_or_else(|e| panic!("{point}: post-recovery charge: {e}"));

        let _ = fs::remove_dir_all(&dir);
    }
}

/// A crash between the checkpoint's rename and WAL truncate leaves
/// records the new snapshot already covers; replay must skip them by
/// LSN instead of double-applying the charges.
#[test]
fn checkpoint_rename_crash_does_not_double_apply_charges() {
    let dir = scratch("ckpt-lsn");
    let path = dir.join("s.hcc");
    let h = handle_for(1);

    let policy = FailPolicy::new().with_crash_point("checkpoint.rename");
    let mut store = Store::open_with(&path, policy).expect("open store");
    store.set_checkpoint_bytes(u64::MAX);
    store.put_dataset(&record(h, 5)).expect("put");
    store.charge(h, 1.0).expect("charge");
    match store.checkpoint() {
        Err(StoreError::Injected(p)) => assert_eq!(p, "checkpoint.rename"),
        other => panic!("expected the armed crash, got {other:?}"),
    }
    drop(store);

    // Snapshot now covers the charge AND the WAL still holds it.
    assert!(fs::metadata(wal_path_of(&path)).expect("wal exists").len() > 0);
    let recovered = Store::open(&path).expect("recovery");
    assert_eq!(
        recovered.spent(h),
        1.0,
        "covered WAL records must be skipped by LSN, not re-applied"
    );
    assert_eq!(recovered.datasets().len(), 1);

    let _ = fs::remove_dir_all(&dir);
}
