//! Stress and edge-case integration tests: degenerate hierarchies,
//! pathological histograms, deep trees, and large-value safety.

use hccount::consistency::{top_down_release, LevelMethod, TopDownConfig};
use hccount::core::{emd, try_emd, CoreError, CountOfCounts};
use hccount::hierarchy::{Hierarchy, HierarchyBuilder};
use hccount::prelude::HierarchicalCounts;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn deep_chain_hierarchy() {
    // A pathological 6-level chain: every level has exactly one node.
    let mut b = HierarchyBuilder::new("l0");
    let mut cur = Hierarchy::ROOT;
    for i in 1..6 {
        cur = b.add_child(cur, format!("l{i}"));
    }
    let h = b.build();
    let data = HierarchicalCounts::from_leaves(
        &h,
        vec![(cur, CountOfCounts::from_group_sizes([1, 2, 3, 4, 5]))],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(61);
    let cfg = TopDownConfig::new(3.0).with_method(LevelMethod::Cumulative { bound: 16 });
    let rel = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
    rel.assert_desiderata(&h);
    // Every level holds the same 5 groups.
    for node in h.iter() {
        assert_eq!(rel.groups(node), 5);
    }
}

#[test]
fn wide_flat_hierarchy() {
    // 200 leaves directly under the root.
    let mut b = HierarchyBuilder::new("root");
    let leaves: Vec<_> = (0..200)
        .map(|i| b.add_child(Hierarchy::ROOT, format!("leaf{i}")))
        .collect();
    let h = b.build();
    let data = HierarchicalCounts::from_leaves(
        &h,
        leaves
            .iter()
            .map(|&l| (l, CountOfCounts::from_group_sizes([1, 3])))
            .collect(),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(62);
    let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Unattributed);
    let rel = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
    rel.assert_desiderata(&h);
    assert_eq!(rel.groups(Hierarchy::ROOT), 400);
}

#[test]
fn all_groups_identical_size() {
    // Zero-variance data: 10 000 groups, every one of size 4.
    let mut b = HierarchyBuilder::new("root");
    let a = b.add_child(Hierarchy::ROOT, "a");
    let c = b.add_child(Hierarchy::ROOT, "b");
    let h = b.build();
    let data = HierarchicalCounts::from_leaves(
        &h,
        vec![
            (a, CountOfCounts::from_counts(vec![0, 0, 0, 0, 6000])),
            (c, CountOfCounts::from_counts(vec![0, 0, 0, 0, 4000])),
        ],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(63);
    for method in [
        LevelMethod::Cumulative { bound: 64 },
        LevelMethod::Unattributed,
    ] {
        let cfg = TopDownConfig::new(2.0).with_method(method);
        let rel = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
        rel.assert_desiderata(&h);
        // Massive equal-size runs pool into huge isotonic partitions,
        // so error should be small relative to 40 000 people.
        let e = emd(rel.node(Hierarchy::ROOT), data.node(Hierarchy::ROOT));
        assert!(e < 4000, "{}: emd {e}", method.name());
    }
}

#[test]
fn single_enormous_group() {
    let mut b = HierarchyBuilder::new("root");
    let a = b.add_child(Hierarchy::ROOT, "a");
    let h = b.build();
    let data = HierarchicalCounts::from_leaves(
        &h,
        vec![(a, CountOfCounts::from_group_sizes([1_000_000]))],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(64);
    // Hg handles unbounded sizes natively.
    let cfg = TopDownConfig::new(2.0).with_method(LevelMethod::Unattributed);
    let rel = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
    let est = rel.node(a).to_unattributed().runs()[0].size;
    assert!(est.abs_diff(1_000_000) < 100, "estimated {est}");

    // Hc truncates at the public bound — the released group size is
    // clamped to K, as the paper's preprocessing specifies.
    let cfg = TopDownConfig::new(2.0).with_method(LevelMethod::Cumulative { bound: 1000 });
    let rel = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
    assert!(rel.node(a).max_size().unwrap_or(0) <= 1000);
    assert_eq!(rel.groups(a), 1);
}

#[test]
fn zero_entity_region_all_empty_groups() {
    // 50 groups, all of size 0 (e.g. Hawaiian-count blocks).
    let mut b = HierarchyBuilder::new("root");
    let a = b.add_child(Hierarchy::ROOT, "a");
    let h = b.build();
    let data = HierarchicalCounts::from_leaves(&h, vec![(a, CountOfCounts::from_counts(vec![50]))])
        .unwrap();
    let mut rng = StdRng::seed_from_u64(65);
    let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 8 });
    let rel = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
    assert_eq!(rel.groups(a), 50);
    // Zero total entities with high probability of small error.
    assert!(rel.node(a).num_entities() < 200);
}

#[test]
fn emd_handles_large_counts_without_overflow() {
    // ~4e9 groups a few sizes apart exercises u64 accumulation.
    let a = CountOfCounts::from_counts(vec![0, 4_000_000_000]);
    let b = CountOfCounts::from_counts(vec![0, 0, 0, 4_000_000_000]);
    assert_eq!(emd(&a, &b), 8_000_000_000);
}

#[test]
fn try_emd_reports_exact_mismatch() {
    let a = CountOfCounts::from_group_sizes([1, 2]);
    let b = CountOfCounts::from_group_sizes([1]);
    assert_eq!(
        try_emd(&a, &b),
        Err(CoreError::GroupCountMismatch { left: 2, right: 1 })
    );
}

#[test]
fn naive_method_in_hierarchy_still_consistent() {
    // Even the strawman satisfies the structural desiderata when run
    // through Algorithm 1 (its failure is purely error magnitude).
    let mut b = HierarchyBuilder::new("root");
    let a = b.add_child(Hierarchy::ROOT, "a");
    let c = b.add_child(Hierarchy::ROOT, "b");
    let h = b.build();
    let data = HierarchicalCounts::from_leaves(
        &h,
        vec![
            (a, CountOfCounts::from_group_sizes([1, 2, 3])),
            (c, CountOfCounts::from_group_sizes([2, 2])),
        ],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(66);
    let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Naive { bound: 32 });
    let rel = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
    rel.assert_desiderata(&h);
    assert_eq!(rel.groups(Hierarchy::ROOT), 5);
}

#[test]
fn adaptive_method_in_hierarchy() {
    let mut b = HierarchyBuilder::new("root");
    let a = b.add_child(Hierarchy::ROOT, "a");
    let c = b.add_child(Hierarchy::ROOT, "b");
    let h = b.build();
    let data = HierarchicalCounts::from_leaves(
        &h,
        vec![
            (
                a,
                CountOfCounts::from_group_sizes((1..=60).collect::<Vec<u64>>()),
            ),
            (c, CountOfCounts::from_group_sizes([1, 1, 1, 9_000])),
        ],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(67);
    let cfg = TopDownConfig::new(2.0).with_method(LevelMethod::Adaptive { bound: 20_000 });
    let rel = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
    rel.assert_desiderata(&h);
    for node in h.iter() {
        assert_eq!(rel.groups(node), data.groups(node));
    }
}
