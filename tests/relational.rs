//! Integration of the relational substrate with the release pipeline:
//! raw Entities/Groups rows → group-by aggregation → private release.

use hccount::consistency::{top_down_release, HierarchicalCounts, LevelMethod, TopDownConfig};
use hccount::hierarchy::{Hierarchy, HierarchyBuilder};
use hccount::noise::PrivacyBudget;
use hccount::tables::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn tables_to_release_round_trip() {
    let mut b = HierarchyBuilder::new("top");
    let s1 = b.add_child(Hierarchy::ROOT, "s1");
    let s2 = b.add_child(Hierarchy::ROOT, "s2");
    let l1 = b.add_child(s1, "l1");
    let l2 = b.add_child(s1, "l2");
    let l3 = b.add_child(s2, "l3");
    let h = b.build();

    let mut db = Database::new();
    for (leaf, sizes) in [
        (l1, vec![1u64, 1, 2, 4]),
        (l2, vec![0, 3, 3]),
        (l3, vec![2, 2, 2, 7, 9]),
    ] {
        for s in sizes {
            db.add_group_with_size(&h, leaf, s);
        }
    }

    // The aggregation must agree with the public Groups table.
    let g = db.groups_per_node(&h);
    assert_eq!(g[Hierarchy::ROOT.index()], 12);
    let hists = db.node_histograms(&h);
    for node in h.iter() {
        assert_eq!(hists[node.index()].num_groups(), g[node.index()]);
    }

    let data = HierarchicalCounts::from_node_histograms(&h, hists)
        .expect("aggregation is consistent by construction");

    let mut rng = StdRng::seed_from_u64(4);
    let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 32 });
    let rel = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
    rel.assert_desiderata(&h);
    for node in h.iter() {
        assert_eq!(rel.groups(node), g[node.index()]);
    }
}

#[test]
fn budget_accounting_matches_algorithm1_splits() {
    // A 3-level hierarchy consumes exactly ε in L + 1 = 3 level
    // slices, as Theorem 1's sequential-composition argument requires.
    let mut budget = PrivacyBudget::new(1.0);
    let per_level = budget.per_level(3);
    for _ in 0..3 {
        budget.spend(per_level).expect("within budget");
    }
    assert!(budget.remaining() < 1e-9);
    assert!(budget.spend(per_level).is_err(), "overspend must fail");
}

#[test]
fn empty_and_singleton_groups_flow_through() {
    let mut b = HierarchyBuilder::new("top");
    let leaf = b.add_child(Hierarchy::ROOT, "leaf");
    let h = b.build();
    let mut db = Database::new();
    db.add_group(&h, leaf); // size 0
    db.add_group_with_size(&h, leaf, 1);
    let data = HierarchicalCounts::from_node_histograms(&h, db.node_histograms(&h)).unwrap();
    assert_eq!(data.node(leaf).count_of(0), 1);

    let mut rng = StdRng::seed_from_u64(9);
    let cfg = TopDownConfig::new(2.0).with_method(LevelMethod::Cumulative { bound: 8 });
    let rel = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
    assert_eq!(rel.groups(leaf), 2);
}
