//! Cross-crate checks of the paper's baseline arguments: why
//! mean-consistency is unsuitable and how the omniscient yardstick
//! behaves.

use hccount::consistency::{
    mean_consistency_release, omniscient_expected_error, omniscient_release, top_down_release,
    LevelMethod, TopDownConfig,
};
use hccount::core::CountOfCounts;
use hccount::hierarchy::{Hierarchy, HierarchyBuilder};
use hccount::prelude::HierarchicalCounts;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_data() -> (Hierarchy, HierarchicalCounts) {
    let mut b = HierarchyBuilder::new("root");
    let leaves: Vec<_> = (0..8)
        .map(|i| b.add_child(Hierarchy::ROOT, format!("leaf{i}")))
        .collect();
    let h = b.build();
    let data = HierarchicalCounts::from_leaves(
        &h,
        leaves
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                (
                    l,
                    CountOfCounts::from_group_sizes((0..20u64).map(|k| 1 + (k + i as u64) % 5)),
                )
            })
            .collect(),
    )
    .unwrap();
    (h, data)
}

#[test]
fn mean_consistency_violates_desiderata_where_algorithm1_does_not() {
    let (h, data) = sample_data();
    let mut rng = StdRng::seed_from_u64(1);

    // The Hay et al. baseline: additively consistent but negative and
    // fractional (footnote 7 of the paper).
    let mut negative = 0;
    let mut fractional = 0;
    for _ in 0..3 {
        let report = mean_consistency_release(&h, &data, 32, 0.5, &mut rng);
        assert!(report.max_consistency_gap(&h) < 1e-6);
        negative += report.negative_cells;
        fractional += report.fractional_cells;
    }
    assert!(negative > 0, "subtraction step should go negative");
    assert!(fractional > 0, "averaging should produce fractions");

    // Algorithm 1 on the same data never violates anything.
    let cfg = TopDownConfig::new(0.5).with_method(LevelMethod::Cumulative { bound: 32 });
    let rel = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
    rel.assert_desiderata(&h);
    for node in h.iter() {
        assert_eq!(rel.groups(node), data.groups(node));
    }
}

#[test]
fn omniscient_simulation_respects_support_and_totals() {
    let (h, data) = sample_data();
    let mut rng = StdRng::seed_from_u64(2);
    let out = omniscient_release(&h, &data, 1.0, &mut rng);
    for node in h.iter() {
        assert_eq!(out[node.index()].num_groups(), data.groups(node));
        for (i, &c) in out[node.index()].as_slice().iter().enumerate() {
            if c > 0 {
                assert!(data.node(node).count_of(i as u64) > 0);
            }
        }
    }
}

#[test]
fn omniscient_formula_scales_inversely_with_epsilon() {
    let e1 = omniscient_expected_error(100, 0.1);
    let e2 = omniscient_expected_error(100, 1.0);
    assert!((e1 / e2 - 10.0).abs() < 1e-9);
    // And linearly with support size.
    assert_eq!(
        omniscient_expected_error(200, 1.0),
        2.0 * omniscient_expected_error(100, 1.0)
    );
}
