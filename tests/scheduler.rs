//! Stress and fault-isolation suite for the engine-wide
//! work-stealing scheduler.
//!
//! The engine runs ONE pool: node-level subtree tasks from every
//! in-flight job share the per-worker deques, so a correctness bug in
//! task interleaving, stealing, or cancellation shows up here as a
//! wrong released byte or a poisoned worker. Two scenarios:
//!
//! - 32 mixed jobs (inline submissions, prepared-handle submissions,
//!   and submissions against a handle DERIVE'd while earlier jobs are
//!   still in flight) race through a 4-worker engine; each must match
//!   a serial `top_down_release` oracle byte for byte.
//! - A job whose estimator panics mid-subtree must fail alone:
//!   concurrently interleaved jobs complete with correct bytes, the
//!   panic text surfaces in the failed job's status, and the workers
//!   survive to serve later submissions.

use std::sync::Arc;

use hccount::consistency::{to_csv, top_down_release, LevelMethod, TopDownConfig};
use hccount::data::{Dataset, DatasetDelta, DatasetKind};
use hccount::engine::{Engine, EngineConfig, EngineError, ReleaseRequest};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serial single-threaded release of `ds` — the oracle every
/// scheduled job is compared against.
fn oracle(ds: &Dataset, cfg: &TopDownConfig, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    to_csv(
        &ds.hierarchy,
        &top_down_release(&ds.hierarchy, &ds.data, cfg, &mut rng).unwrap(),
    )
}

/// A 4-worker engine with the cache off (every submission computes)
/// and the compute gate widened to 4, so all four workers interleave
/// even on a single-core host.
fn engine() -> Engine {
    Engine::start(
        EngineConfig::default()
            .with_workers(4)
            .with_active_limit(4)
            .with_cache_capacity(0),
    )
}

fn method_for(i: usize) -> LevelMethod {
    match i % 3 {
        0 => LevelMethod::Cumulative { bound: 500 },
        1 => LevelMethod::Unattributed,
        _ => LevelMethod::Adaptive { bound: 500 },
    }
}

/// Satellite: 32 mixed jobs under 4 workers, every result matching a
/// serial-execution oracle. Job classes cycle through inline
/// requests, prepared-handle requests, and (after job 16) requests
/// against a handle derived mid-stream — so registry traffic, delta
/// application, and node-task execution all contend at once.
#[test]
fn stress_32_mixed_jobs_match_serial_oracles_under_4_workers() {
    let base = Dataset::generate(DatasetKind::Housing, 0.001, 5);
    // A real ~1% resize delta, the same shape the derive bench uses.
    let delta = DatasetDelta::resize_sample(&base, 100);
    let post = base.apply_delta(&delta).unwrap();

    let engine = engine();
    let bh = Arc::new(base.hierarchy.clone());
    let bd = Arc::new(base.data.clone());
    let base_handle = engine.prepare(Arc::clone(&bh), Arc::clone(&bd)).unwrap();

    let mut ids = Vec::new();
    let mut expected = Vec::new();
    let mut derived_handle = None;
    for i in 0..32usize {
        if i == 16 {
            // Mid-stream DERIVE: earlier jobs are still in flight on
            // the same deques while the registry mutates.
            derived_handle = Some(engine.derive(base_handle, &delta).unwrap());
        }
        let cfg = TopDownConfig::new(0.5 + 0.25 * (i % 6) as f64).with_method(method_for(i));
        let seed = 1000 + i as u64;
        let (id, want) = match (i % 3, derived_handle) {
            (0, _) => (
                engine
                    .submit(ReleaseRequest::new(
                        Arc::clone(&bh),
                        Arc::clone(&bd),
                        cfg.clone(),
                        seed,
                    ))
                    .unwrap(),
                oracle(&base, &cfg, seed),
            ),
            (1, _) => (
                engine
                    .submit_prepared(base_handle, cfg.clone(), seed)
                    .unwrap(),
                oracle(&base, &cfg, seed),
            ),
            (_, Some(h)) => (
                engine.submit_prepared(h, cfg.clone(), seed).unwrap(),
                oracle(&post, &cfg, seed),
            ),
            (_, None) => (
                // Before the derive exists, the third class submits the
                // post-delta dataset inline — same oracle either way.
                engine
                    .submit(ReleaseRequest::new(
                        Arc::new(post.hierarchy.clone()),
                        Arc::new(post.data.clone()),
                        cfg.clone(),
                        seed,
                    ))
                    .unwrap(),
                oracle(&post, &cfg, seed),
            ),
        };
        ids.push(id);
        expected.push(want);
    }

    for (i, id) in ids.into_iter().enumerate() {
        let (result, from_cache) = engine.wait(id).unwrap();
        assert!(!from_cache, "job {i}: cache is disabled");
        assert_eq!(
            result.csv, expected[i],
            "job {i} diverged from its serial oracle"
        );
    }
    let stats = engine.stats();
    assert_eq!((stats.completed, stats.failed), (32, 0));
    assert!(
        stats.tasks_executed >= 32,
        "every job expands into at least one node task; got {}",
        stats.tasks_executed
    );

    // The stress run must light up the scheduler telemetry: steal
    // scans happen whenever a worker's own deque runs dry, and every
    // node task passes the compute gate, so both series must be
    // non-zero here and visible in the METRICS exposition.
    let snap = engine.telemetry();
    let totals = snap.totals();
    assert!(
        totals.steal_attempts > 0,
        "4 workers draining 32 jobs never scanned for steals?"
    );
    assert_eq!(
        totals.tasks_executed, stats.tasks_executed,
        "per-worker task counters must sum to the engine-wide stat"
    );
    assert!(
        totals.gate_wait.count >= totals.tasks_executed,
        "every task acquires the compute gate once; {} gate waits < {} tasks",
        totals.gate_wait.count,
        totals.tasks_executed
    );
    let text = snap.to_prometheus();
    let series_value = |name: &str| -> u64 {
        text.lines()
            .filter(|l| l.starts_with(name))
            .filter_map(|l| l.rsplit_once(' ')?.1.parse::<u64>().ok())
            .sum()
    };
    assert!(
        series_value("hcc_steal_attempts_total{") > 0,
        "METRICS must report the non-zero steal series"
    );
    assert!(
        series_value("hcc_gate_wait_seconds_count") > 0,
        "METRICS must report the non-zero gate-wait series"
    );
}

/// Satellite: panic isolation. A job whose estimator panics
/// mid-subtree (ε < 0 passes admission — the engine validates shape,
/// not budget — and trips the mechanism's `epsilon must be positive`
/// assertion inside a node task) fails alone. The good jobs
/// sandwiching it interleave on the same deques and must complete
/// with oracle-exact bytes, and the pool must survive to serve a
/// submission made after the failure.
#[test]
fn panicking_job_fails_alone_while_interleaved_jobs_complete() {
    let ds = Dataset::generate(DatasetKind::Housing, 0.001, 5);
    let h = Arc::new(ds.hierarchy.clone());
    let d = Arc::new(ds.data.clone());
    let engine = engine();
    let good_cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 500 });
    let submit_good = |seed: u64| {
        engine
            .submit(ReleaseRequest::new(
                Arc::clone(&h),
                Arc::clone(&d),
                good_cfg.clone(),
                seed,
            ))
            .unwrap()
    };

    let before: Vec<_> = (0..4).map(|k| (50 + k, submit_good(50 + k))).collect();
    let poison = engine
        .submit(ReleaseRequest::new(
            Arc::clone(&h),
            Arc::clone(&d),
            TopDownConfig::new(-1.0).with_method(LevelMethod::Cumulative { bound: 500 }),
            99,
        ))
        .unwrap();
    let after: Vec<_> = (0..4).map(|k| (60 + k, submit_good(60 + k))).collect();

    match engine.wait(poison) {
        Err(EngineError::JobFailed(msg)) => {
            assert!(
                msg.contains("positive"),
                "panic text must reach the job status, got {msg:?}"
            );
        }
        other => panic!("poison job must fail, got {other:?}"),
    }
    for (seed, id) in before.into_iter().chain(after) {
        let (result, _) = engine.wait(id).unwrap();
        assert_eq!(
            result.csv,
            oracle(&ds, &good_cfg, seed),
            "seed {seed}: job sharing deques with the panicking job diverged"
        );
    }

    // The pool is intact: a fresh submission still completes.
    let (result, _) = engine.wait(submit_good(70)).unwrap();
    assert_eq!(result.csv, oracle(&ds, &good_cfg, 70));
    let stats = engine.stats();
    assert_eq!((stats.completed, stats.failed), (9, 1));
}
