//! Minimal, self-contained stand-in for the parts of the `criterion`
//! crate that this workspace's benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency. It is a wall-clock
//! mean-per-iteration harness: no warm-up analysis, outlier rejection,
//! or HTML reports. Each benchmark runs for a short fixed measurement
//! window and prints `group/id ... <mean> ns/iter`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            text: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        Self { text }
    }
}

/// Passed to the closure under test; `iter` measures the closure.
pub struct Bencher {
    /// Mean wall-clock time per iteration from the last `iter` call.
    elapsed_per_iter: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call (also forces lazy init in the routine).
        black_box(routine());
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters: u32 = 0;
        while start.elapsed() < budget && iters < 1_000_000 {
            black_box(routine());
            iters += 1;
        }
        self.elapsed_per_iter = start.elapsed() / iters.max(1);
    }
}

fn run_one(group: &str, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_per_iter: Duration::ZERO,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.text.clone()
    } else {
        format!("{group}/{}", id.text)
    };
    println!("{label:<50} {:>12} ns/iter", b.elapsed_per_iter.as_nanos());
}

/// Group of related benchmarks; mirrors criterion's `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed measurement
    /// window ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), &mut f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
