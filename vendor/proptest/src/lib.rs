//! Minimal, self-contained stand-in for the parts of the `proptest`
//! crate that this workspace uses: the `proptest!` macro, `Strategy`
//! over numeric ranges, `any::<T>()`, `prop::collection::vec`, and the
//! `prop_assert*` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency. Semantics differ from real
//! proptest in two ways: inputs are generated from a deterministic
//! per-test seed (derived from the test name), and there is **no
//! shrinking** — a failing case panics with the generated inputs left
//! to the assertion message. Each `#[test]` still runs
//! `ProptestConfig::cases` random cases.

pub mod test_runner {
    /// Subset of proptest's run configuration: only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Drives one property test: owns the RNG and the case budget.
    #[derive(Clone, Debug)]
    pub struct TestRunner {
        state: u64,
        cases: u32,
    }

    impl TestRunner {
        /// Seeds deterministically from the test name so every test
        /// explores its own stream but runs are reproducible.
        pub fn new(config: &ProptestConfig, name: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x1000_0000_01b3);
            }
            Self {
                state,
                cases: config.cases,
            }
        }

        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// SplitMix64 step.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;
    use std::ops::{Range, RangeInclusive};

    /// Generates one value per test case. Unlike real proptest there is
    /// no value tree and no shrinking: `new_value` yields the input
    /// directly.
    pub trait Strategy {
        type Value;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            (**self).new_value(runner)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let wide = ((runner.next_u64() as u128) << 64
                        | runner.next_u64() as u128)
                        % span;
                    (self.start as i128 + wide as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let wide = ((runner.next_u64() as u128) << 64
                        | runner.next_u64() as u128)
                        % span;
                    (start as i128 + wide as i128) as $t
                }
            }
        )*};
    }

    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(runner),)+)
                }
            }
        };
    }

    impl_strategy_tuple!(A);
    impl_strategy_tuple!(A, B);
    impl_strategy_tuple!(A, B, C);
    impl_strategy_tuple!(A, B, C, D);

    macro_rules! impl_strategy_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (runner.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_strategy_float_range!(f32, f64);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy, via `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn generate(runner: &mut TestRunner) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(runner: &mut TestRunner) -> Self {
                    runner.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn generate(runner: &mut TestRunner) -> Self {
            runner.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn generate(runner: &mut TestRunner) -> Self {
            runner.next_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> T {
            T::generate(runner)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + (runner.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Mirrors `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors the `prop` module alias from proptest's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// No shrinking happens in this shim, so the `prop_assert*` macros are
/// plain panicking assertions; the panic message carries the formatted
/// context just like a failed `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Skips the current case when the assumption fails. Inside the shim's
/// `proptest!` expansion each case is one iteration of a `for` loop, so
/// `continue` moves on to the next generated input (the skipped case
/// still counts against the case budget, unlike real proptest).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Mirrors `proptest::proptest!`: wraps each `fn name(arg in strategy,
/// ...) { body }` item into a `#[test]` that draws `cases` inputs and
/// runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items!(($cfg); $($items)*);
    };
    ($($items:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()); $($items)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for __case in 0..runner.cases() {
                $(let $arg =
                    $crate::strategy::Strategy::new_value(&($strat), &mut runner);)+
                $body
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs(
            xs in prop::collection::vec(0u64..40, 0..12),
            nested in prop::collection::vec(prop::collection::vec(-5i64..5, 1..4), 1..6),
            flag in any::<bool>(),
            seed in any::<u64>(),
            eps in 0.05f64..5.0,
        ) {
            prop_assert!(xs.len() < 12);
            prop_assert!(xs.iter().all(|&x| x < 40));
            prop_assert!(!nested.is_empty() && nested.len() < 6);
            for inner in &nested {
                prop_assert!(!inner.is_empty() && inner.len() < 4);
                prop_assert!(inner.iter().all(|&v| (-5..5).contains(&v)));
            }
            prop_assert!((0.05..5.0).contains(&eps), "eps {} flag {}", eps, flag);
            let _ = seed;
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(n in 1usize..4) {
            prop_assert!((1..4).contains(&n));
        }
    }
}
