//! Minimal, self-contained stand-in for the parts of the `rand` crate
//! (0.8 API) that this workspace uses: `rngs::StdRng`, `SeedableRng`,
//! and the `Rng` extension trait with `gen` / `gen_range` / `gen_bool`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency. `StdRng` here is a
//! xoshiro256++ generator seeded through SplitMix64 — deterministic
//! for a given seed (which the CLI and tests rely on), statistically
//! solid for the Monte-Carlo style assertions in the test suite, but
//! *not* stream-compatible with the real `rand::rngs::StdRng`.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that `Rng::gen` can produce (the `Standard` distribution in
/// real `rand`).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Element types `gen_range` can draw uniformly (mirrors
/// `rand::distributions::uniform::SampleUniform`). The blanket
/// [`SampleRange`] impls below key off this trait so that integer
/// literal inference behaves like the real crate's
/// (`rng.gen_range(-5..5)` unifies with the use site's type).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                let span = (end as i128 - start as i128) as u128;
                let v = u128::sample_standard(rng) % span;
                (start as i128 + v as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = u128::sample_standard(rng) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                start + <$t>::sample_standard(rng) * (end - start)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                Self::sample_half_open(rng, start, end)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_inclusive(rng, start, end)
    }
}

/// User-facing extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirror of `rand::SeedableRng` restricted to what the workspace uses.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++, SplitMix64
    /// seeded). Not stream-compatible with `rand`'s ChaCha-based
    /// `StdRng`, but the workspace only relies on determinism and
    /// statistical quality, never on exact streams.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s.iter().all(|&w| w == 0) {
                s[0] = 1; // xoshiro must not start from the all-zero state
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs, (0..16).map(|_| c.gen::<u64>()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-8..8);
            assert!((-8..8).contains(&v));
            let u: u64 = rng.gen_range(40..=1000);
            assert!((40..=1000).contains(&u));
            let f: f64 = rng.gen_range(-10.0..10.0);
            assert!((-10.0..10.0).contains(&f));
        }
    }

    #[test]
    fn f64_uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
